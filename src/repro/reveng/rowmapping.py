"""Logical-to-physical row mapping recovery (§3.2).

Vendors remap controller-visible row addresses onto physical wordlines.
The standard recovery method (used by every characterization study) is to
hammer one *logical* row hard and observe which *logical* rows take
bitflips: the victims are the hammered row's physical neighbors.  Chaining
the adjacency relation reconstructs the physical order.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..bender.host import DramBenderHost
from ..core.patterns import single_sided_rowhammer
from ..disturbance.calibration import DataPattern
from ..dram.module import DramModule


def infer_physical_neighbors(
    module: DramModule,
    logical_row: int,
    candidate_rows: Sequence[int],
    bank: int = 0,
    hammer_factor: float = 16.0,
) -> list[int]:
    """Logical rows physically adjacent to ``logical_row``.

    Hammers the row single-sidedly for ``hammer_factor`` times the module's
    average HC_first and reports candidate rows that flipped.  Candidates
    should be the nearby logical window (mappings keep remapping local).
    """
    host = DramBenderHost(module)
    pattern = DataPattern.CHECKER_AA
    victim_fill = pattern.negated.fill(module.geometry.row_bytes)
    rows_init = {row: victim_fill for row in candidate_rows if row != logical_row}
    rows_init[logical_row] = pattern.fill(module.geometry.row_bytes)
    host.write_rows(bank, rows_init)

    count = int(module.calibration.rh_avg * hammer_factor)
    # the pattern builder takes a physical aggressor; we are probing the
    # mapping, so feed it the physical row behind the logical address
    program = single_sided_rowhammer(
        module, module.to_physical(logical_row), count, bank=bank
    )
    host.run(program)

    flipped = []
    read_back = host.read_rows(
        bank, [row for row in candidate_rows if row != logical_row]
    )
    for row, data in read_back.items():
        if not np.array_equal(data, victim_fill):
            flipped.append(row)
    return sorted(flipped)


def recover_physical_order(
    module: DramModule,
    logical_rows: Sequence[int],
    bank: int = 0,
    window: int = 8,
) -> Optional[list[int]]:
    """Reconstruct the physical order of a logical row range.

    Builds the adjacency graph by hammering each row, then walks the chain
    from an endpoint (a row with a single in-range neighbor).  Returns the
    logical rows in physical order, or None if the adjacency data is too
    sparse to chain (e.g. very strong rows that never flipped).
    """
    rows = list(logical_rows)
    row_set = set(rows)
    adjacency: dict[int, set[int]] = {row: set() for row in rows}
    for row in rows:
        candidates = [
            c for c in range(row - window, row + window + 1) if c in row_set
        ]
        for neighbor in infer_physical_neighbors(module, row, candidates, bank):
            adjacency[row].add(neighbor)
            adjacency[neighbor].add(row)

    # Interior range endpoints have >= 1 neighbor; chain from a degree-1
    # node when one exists, otherwise from the lowest row.
    endpoints = [row for row in rows if len(adjacency[row]) == 1]
    start = min(endpoints) if endpoints else rows[0]
    order = [start]
    visited = {start}
    current = start
    while True:
        nxt = [n for n in adjacency[current] if n not in visited]
        if not nxt:
            break
        current = nxt[0]
        order.append(current)
        visited.add(current)
    if len(order) < len(rows):
        return None
    return order


def verify_mapping_hypothesis(
    module: DramModule,
    logical_rows: Sequence[int],
    bank: int = 0,
) -> float:
    """Fraction of hammered rows whose observed victims match the mapping.

    Ground-truth validation tool: compares inferred neighbors against the
    device's actual mapping (which an attacker would not have, but tests
    do).
    """
    matches = 0
    total = 0
    for row in logical_rows:
        candidates = list(range(max(0, row - 8), row + 9))
        candidates = [
            c for c in candidates if c < module.geometry.rows_per_bank
        ]
        observed = set(infer_physical_neighbors(module, row, candidates, bank))
        physical = module.to_physical(row)
        expected = {
            module.to_logical(n)
            for n in module.geometry.neighbors(physical, 1)
        }
        expected = {e for e in expected if e in set(candidates)}
        if not expected:
            continue
        total += 1
        if expected <= observed:
            matches += 1
    return matches / total if total else 0.0
