"""Sampling-based Target Row Refresh (TRR), as uncovered by U-TRR.

§7 finds the tested SK Hynix module uses a *sampling-based* TRR: the chip
probabilistically samples one aggressor row address from the last 450 ACT
commands preceding a TRR-capable REF, and preventively refreshes that row's
victims when the REF arrives.  Only a subset of REFs are TRR-capable.

The mechanism sees nothing but the command bus -- which is precisely why
SiMRA bypasses it: one SiMRA operation simultaneously activates up to 32
rows while issuing only two ACT commands (Obs. 26).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..disturbance.calibration import (
    TRR_CAPABLE_REF_PERIOD,
    TRR_SAMPLER_WINDOW,
)
from ..disturbance.distributions import rng_for


class SamplingTrr:
    """In-DRAM TRR model implementing :class:`~repro.dram.bank.TrrHook`."""

    def __init__(
        self,
        window: int = TRR_SAMPLER_WINDOW,
        capable_ref_period: int = TRR_CAPABLE_REF_PERIOD,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError("sampler window must be positive")
        if capable_ref_period < 1:
            raise ValueError("capable REF period must be positive")
        self.window = window
        self.capable_ref_period = capable_ref_period
        self._buffers: dict[int, deque[int]] = {}
        self._ref_counter: dict[int, int] = {}
        self._rng: np.random.Generator = rng_for("sampling-trr", seed)
        # plain int counters: dict increments per ACT are measurable
        # overhead in the hammer hot loop
        self.acts_seen = 0
        self.refs_seen = 0
        self.targeted_refreshes = 0

    @property
    def stats(self) -> dict:
        """Counter snapshot, dict-shaped for report/gauntlet consumers."""
        return {
            "acts_seen": self.acts_seen,
            "refs_seen": self.refs_seen,
            "targeted_refreshes": self.targeted_refreshes,
        }

    def _buffer(self, bank: int) -> deque[int]:
        buf = self._buffers.get(bank)
        if buf is None:
            buf = deque(maxlen=self.window)
            self._buffers[bank] = buf
        return buf

    # ------------------------------------------------------------------
    # TrrHook interface
    # ------------------------------------------------------------------
    def on_act(self, bank: int, row: int, now_ns: float) -> None:
        self.acts_seen += 1
        self._buffer(bank).append(row)

    def on_act_stream(self, bank: int, rows, times: int = 1) -> None:
        """Observe ``times`` repetitions of the ACT sequence ``rows``.

        Exactly equivalent to ``rows.size * times`` sequential
        :meth:`on_act` calls: the bounded FIFO's final content is the last
        ``window`` elements of the tiled sequence, which this computes
        directly (modular indexing) instead of appending one by one.  The
        batched host path calls this once per compiled chunk, between
        REFs, so the buffer a TRR-capable REF samples from is
        bit-identical to the unrolled execution's.
        """
        rows = np.asarray(rows, dtype=np.int64)
        total = int(rows.size) * int(times)
        if total == 0:
            return
        self.acts_seen += total
        buf = self._buffer(bank)
        if total >= self.window:
            # only the tail survives the FIFO; reconstruct it in place
            tail = np.arange(total - self.window, total) % rows.size
            buf.clear()
            buf.extend(int(row) for row in rows[tail])
        else:
            seq = rows if times == 1 else np.tile(rows, int(times))
            buf.extend(int(row) for row in seq)

    def on_ref(self, bank: int, now_ns: float) -> list[int]:
        self.refs_seen += 1
        count = self._ref_counter.get(bank, 0) + 1
        self._ref_counter[bank] = count
        # One in `capable_ref_period` REFs performs a targeted refresh, at
        # unpredictable positions (U-TRR finds no fixed phase): a fixed
        # phase would let an attacker park the dummy flood exactly on the
        # capable REFs and starve the sampler deterministically.
        if self._rng.random() >= 1.0 / self.capable_ref_period:
            return []
        buffer = self._buffer(bank)
        if not buffer:
            return []
        index = int(self._rng.integers(0, len(buffer)))
        sampled = buffer[index]
        buffer.clear()
        self.targeted_refreshes += 1
        return [sampled]
