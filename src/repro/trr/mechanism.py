"""Sampling-based Target Row Refresh (TRR), as uncovered by U-TRR.

§7 finds the tested SK Hynix module uses a *sampling-based* TRR: the chip
probabilistically samples one aggressor row address from the last 450 ACT
commands preceding a TRR-capable REF, and preventively refreshes that row's
victims when the REF arrives.  Only a subset of REFs are TRR-capable.

The mechanism sees nothing but the command bus -- which is precisely why
SiMRA bypasses it: one SiMRA operation simultaneously activates up to 32
rows while issuing only two ACT commands (Obs. 26).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..disturbance.calibration import (
    TRR_CAPABLE_REF_PERIOD,
    TRR_SAMPLER_WINDOW,
)
from ..disturbance.distributions import rng_for


class SamplingTrr:
    """In-DRAM TRR model implementing :class:`~repro.dram.bank.TrrHook`."""

    def __init__(
        self,
        window: int = TRR_SAMPLER_WINDOW,
        capable_ref_period: int = TRR_CAPABLE_REF_PERIOD,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError("sampler window must be positive")
        if capable_ref_period < 1:
            raise ValueError("capable REF period must be positive")
        self.window = window
        self.capable_ref_period = capable_ref_period
        self._buffers: dict[int, deque[int]] = {}
        self._ref_counter: dict[int, int] = {}
        self._rng: np.random.Generator = rng_for("sampling-trr", seed)
        self.stats = {"acts_seen": 0, "refs_seen": 0, "targeted_refreshes": 0}

    def _buffer(self, bank: int) -> deque[int]:
        buf = self._buffers.get(bank)
        if buf is None:
            buf = deque(maxlen=self.window)
            self._buffers[bank] = buf
        return buf

    # ------------------------------------------------------------------
    # TrrHook interface
    # ------------------------------------------------------------------
    def on_act(self, bank: int, row: int, now_ns: float) -> None:
        self.stats["acts_seen"] += 1
        self._buffer(bank).append(row)

    def on_ref(self, bank: int, now_ns: float) -> list[int]:
        self.stats["refs_seen"] += 1
        count = self._ref_counter.get(bank, 0) + 1
        self._ref_counter[bank] = count
        # One in `capable_ref_period` REFs performs a targeted refresh, at
        # unpredictable positions (U-TRR finds no fixed phase): a fixed
        # phase would let an attacker park the dummy flood exactly on the
        # capable REFs and starve the sampler deterministically.
        if self._rng.random() >= 1.0 / self.capable_ref_period:
            return []
        buffer = self._buffer(bank)
        if not buffer:
            return []
        index = int(self._rng.integers(0, len(buffer)))
        sampled = buffer[index]
        buffer.clear()
        self.stats["targeted_refreshes"] += 1
        return [sampled]
