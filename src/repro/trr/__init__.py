"""In-DRAM Target Row Refresh mechanism model (§7)."""

from .mechanism import SamplingTrr

__all__ = ["SamplingTrr"]
