"""Content-addressed artifact store for experiment results.

Every experiment in this repository is deterministic: all randomness flows
through :func:`repro.disturbance.distributions.stable_seed`, so a result is
fully determined by *what* ran (experiment id + shard), *how big* it ran
(:class:`ExperimentScale`), and *which code* ran it.  The store keys each
persisted :class:`ExperimentResult` on exactly that triple, which makes
re-runs, resumed campaigns and report generation cache hits instead of
hours of recomputation.

Layout under the store root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)::

    artifacts/<aa>/<digest>.json   -- one ExperimentResult + metadata
    runs/<run_id>/manifest.json    -- written by the campaign runner
    runs/<run_id>/events.jsonl     -- written by the campaign runner
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional

from ..core.scale import ExperimentScale
from ..experiments.base import ExperimentResult

#: bump to invalidate every artifact regardless of code fingerprint
STORE_FORMAT = 1


def scale_fingerprint(scale: ExperimentScale) -> str:
    """Stable hex digest of every knob on an :class:`ExperimentScale`."""
    payload = json.dumps(
        dataclasses.asdict(scale), sort_keys=True, default=list
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest over the source of the ``repro`` package.

    Any edit to any ``.py`` file under ``src/repro`` changes the
    fingerprint, so stale artifacts from older code can never be served.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one stored result: what ran, at which scale, which code."""

    experiment_id: str
    scale_fp: str
    code_fp: str
    #: shard label (e.g. a config id) when the artifact is one slice of an
    #: experiment run at session granularity; ``None`` for a whole result
    shard: Optional[str] = None

    @property
    def digest(self) -> str:
        parts = (
            f"format={STORE_FORMAT}",
            f"experiment={self.experiment_id}",
            f"shard={self.shard or ''}",
            f"scale={self.scale_fp}",
            f"code={self.code_fp}",
        )
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    @property
    def label(self) -> str:
        if self.shard:
            return f"{self.experiment_id}[{self.shard}]"
        return self.experiment_id


def default_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ArtifactStore:
    """Filesystem-backed, content-addressed store of experiment results.

    Writes are atomic (temp file + rename), so concurrent campaign workers
    and concurrent campaigns can share one store safely.
    """

    def __init__(self, root: Optional[Path | str] = None):
        self.root = Path(root) if root is not None else default_root()

    # -- keys ----------------------------------------------------------
    def key(
        self,
        experiment_id: str,
        scale: ExperimentScale,
        shard: Optional[str] = None,
    ) -> ArtifactKey:
        return ArtifactKey(
            experiment_id=experiment_id,
            scale_fp=scale_fingerprint(scale),
            code_fp=code_fingerprint(),
            shard=shard,
        )

    # -- paths ---------------------------------------------------------
    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def artifact_path(self, key: ArtifactKey) -> Path:
        digest = key.digest
        return self.artifacts_dir / digest[:2] / f"{digest}.json"

    # -- artifact IO ---------------------------------------------------
    def has(self, key: ArtifactKey) -> bool:
        return self.artifact_path(key).exists()

    def get(self, key: ArtifactKey) -> Optional[ExperimentResult]:
        """The stored result for ``key``, or ``None`` on a miss.

        A corrupt artifact (truncated write from a killed process on a
        filesystem without atomic rename) is treated as a miss.
        """
        payload = self.get_payload(key)
        if payload is None:
            return None
        return ExperimentResult.from_dict(payload["result"])

    def get_payload(self, key: ArtifactKey) -> Optional[dict]:
        path = self.artifact_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("key", {}).get("digest") != key.digest:
            return None
        return payload

    def put(
        self,
        key: ArtifactKey,
        result: ExperimentResult,
        elapsed: float,
        worker: Optional[str] = None,
    ) -> Path:
        path = self.artifact_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": {
                "digest": key.digest,
                "experiment_id": key.experiment_id,
                "shard": key.shard,
                "scale_fp": key.scale_fp,
                "code_fp": key.code_fp,
                "format": STORE_FORMAT,
            },
            "created_at": time.time(),
            "elapsed": elapsed,
            "worker": worker,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1))
        tmp.replace(path)
        return path

    # -- maintenance ---------------------------------------------------
    def artifact_count(self) -> int:
        if not self.artifacts_dir.exists():
            return 0
        return sum(1 for _ in self.artifacts_dir.rglob("*.json"))

    def prune(self) -> int:
        """Delete artifacts not reachable from the current code fingerprint.

        Returns the number of files removed.  Useful after a code change
        has orphaned old artifacts.
        """
        current = code_fingerprint()
        removed = 0
        if not self.artifacts_dir.exists():
            return 0
        for path in self.artifacts_dir.rglob("*.json"):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                path.unlink(missing_ok=True)
                removed += 1
                continue
            if payload.get("key", {}).get("code_fp") != current:
                path.unlink(missing_ok=True)
                removed += 1
        return removed
