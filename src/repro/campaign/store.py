"""Content-addressed artifact store for experiment results.

Every experiment in this repository is deterministic: all randomness flows
through :func:`repro.disturbance.distributions.stable_seed`, so a result is
fully determined by *what* ran (experiment id + shard), *how big* it ran
(:class:`ExperimentScale`), and *which code* ran it.  The store keys each
persisted :class:`ExperimentResult` on exactly that triple, which makes
re-runs, resumed campaigns and report generation cache hits instead of
hours of recomputation.

Layout under the store root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)::

    artifacts/<aa>/<digest>.json   -- one ExperimentResult + metadata
    runs/<run_id>/manifest.json    -- written by the campaign runner
    runs/<run_id>/events.jsonl     -- written by the campaign runner
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional

from ..core.scale import ExperimentScale
from ..experiments.base import ExperimentResult

#: bump to invalidate every artifact regardless of code fingerprint
STORE_FORMAT = 1


def scale_fingerprint(scale: ExperimentScale) -> str:
    """Stable hex digest of every knob on an :class:`ExperimentScale`."""
    payload = json.dumps(
        dataclasses.asdict(scale), sort_keys=True, default=list
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: subpackages every experiment's execution flows through; always part of a
#: scoped fingerprint
CORE_SUBSYSTEMS = (
    "bender",
    "campaign",
    "core",
    "disturbance",
    "dram",
    "experiments",
)

#: extra subpackages specific experiments execute: editing one of these
#: must invalidate the listed experiments' artifacts (and, thanks to the
#: scoping, *only* theirs).  fig24 attaches ``repro.trr``; fig25 simulates
#: through ``repro.memsys`` (which pulls mitigations + workloads); the
#: attack gauntlet exercises synthesis, the mitigation hooks and the TRR.
EXPERIMENT_SUBSYSTEM_DEPS: dict[str, tuple[str, ...]] = {
    "fig24": ("trr",),
    "fig25": ("memsys", "mitigations", "workloads"),
    "attack_surface": ("attack", "mitigations", "trr"),
    "pud_reliability": ("memsys", "mitigations", "pud", "reliability",
                        "workloads"),
}


@lru_cache(maxsize=None)
def subsystem_fingerprint(name: str) -> str:
    """Digest of one ``repro`` subpackage's sources.

    ``name=""`` digests only the package's top-level modules (no
    subdirectories); any other name digests ``src/repro/<name>``
    recursively.
    """
    package_root = Path(__file__).resolve().parent.parent
    if name:
        paths = sorted((package_root / name).rglob("*.py"))
    else:
        paths = sorted(package_root.glob("*.py"))
    digest = hashlib.sha256()
    for path in paths:
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@lru_cache(maxsize=None)
def code_fingerprint(experiment_id: Optional[str] = None) -> str:
    """Hex digest over the sources the given experiment can execute.

    For a registered experiment the digest is scoped: top-level modules,
    the :data:`CORE_SUBSYSTEMS`, and the experiment's declared
    :data:`EXPERIMENT_SUBSYSTEM_DEPS`.  Editing an unrelated subsystem
    (say, ``repro.reveng``) then leaves the experiment's artifacts valid
    instead of invalidating the whole store.

    With no ``experiment_id`` -- or an id the registry does not know,
    where no dependency claim can be trusted -- the digest covers every
    ``.py`` file under ``src/repro``, so stale artifacts from older code
    can never be served.
    """
    if experiment_id is not None:
        from ..experiments import EXPERIMENTS

        if experiment_id in EXPERIMENTS:
            subsystems = sorted(
                set(CORE_SUBSYSTEMS)
                | set(EXPERIMENT_SUBSYSTEM_DEPS.get(experiment_id, ()))
            )
            digest = hashlib.sha256()
            digest.update(subsystem_fingerprint("").encode())
            for name in subsystems:
                digest.update(name.encode())
                digest.update(b"\0")
                digest.update(subsystem_fingerprint(name).encode())
            return digest.hexdigest()[:16]
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one stored result: what ran, at which scale, which code."""

    experiment_id: str
    scale_fp: str
    code_fp: str
    #: shard label (e.g. a config id) when the artifact is one slice of an
    #: experiment run at session granularity; ``None`` for a whole result
    shard: Optional[str] = None

    @property
    def digest(self) -> str:
        parts = (
            f"format={STORE_FORMAT}",
            f"experiment={self.experiment_id}",
            f"shard={self.shard or ''}",
            f"scale={self.scale_fp}",
            f"code={self.code_fp}",
        )
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    @property
    def label(self) -> str:
        if self.shard:
            return f"{self.experiment_id}[{self.shard}]"
        return self.experiment_id


def default_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ArtifactStore:
    """Filesystem-backed, content-addressed store of experiment results.

    Writes are atomic (temp file + rename), so concurrent campaign workers
    and concurrent campaigns can share one store safely.
    """

    def __init__(self, root: Optional[Path | str] = None):
        self.root = Path(root) if root is not None else default_root()

    # -- keys ----------------------------------------------------------
    def key(
        self,
        experiment_id: str,
        scale: ExperimentScale,
        shard: Optional[str] = None,
    ) -> ArtifactKey:
        return ArtifactKey(
            experiment_id=experiment_id,
            scale_fp=scale_fingerprint(scale),
            code_fp=code_fingerprint(experiment_id),
            shard=shard,
        )

    # -- paths ---------------------------------------------------------
    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def artifact_path(self, key: ArtifactKey) -> Path:
        digest = key.digest
        return self.artifacts_dir / digest[:2] / f"{digest}.json"

    # -- artifact IO ---------------------------------------------------
    def has(self, key: ArtifactKey) -> bool:
        return self.artifact_path(key).exists()

    def get(self, key: ArtifactKey) -> Optional[ExperimentResult]:
        """The stored result for ``key``, or ``None`` on a miss.

        A corrupt artifact (truncated write from a killed process on a
        filesystem without atomic rename) is treated as a miss.
        """
        payload = self.get_payload(key)
        if payload is None:
            return None
        return ExperimentResult.from_dict(payload["result"])

    def get_payload(self, key: ArtifactKey) -> Optional[dict]:
        path = self.artifact_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("key", {}).get("digest") != key.digest:
            return None
        return payload

    def put(
        self,
        key: ArtifactKey,
        result: ExperimentResult,
        elapsed: float,
        worker: Optional[str] = None,
    ) -> Path:
        path = self.artifact_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": {
                "digest": key.digest,
                "experiment_id": key.experiment_id,
                "shard": key.shard,
                "scale_fp": key.scale_fp,
                "code_fp": key.code_fp,
                "format": STORE_FORMAT,
            },
            "created_at": time.time(),
            "elapsed": elapsed,
            "worker": worker,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1))
        tmp.replace(path)
        return path

    # -- maintenance ---------------------------------------------------
    def artifact_count(self) -> int:
        if not self.artifacts_dir.exists():
            return 0
        return sum(1 for _ in self.artifacts_dir.rglob("*.json"))

    def prune(self) -> int:
        """Delete artifacts not reachable from the current code fingerprint.

        Returns the number of files removed.  Useful after a code change
        has orphaned old artifacts.  Each artifact is checked against the
        fingerprint scoped to *its* experiment, matching what
        :meth:`key` would compute for it today.
        """
        removed = 0
        if not self.artifacts_dir.exists():
            return 0
        for path in self.artifacts_dir.rglob("*.json"):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                path.unlink(missing_ok=True)
                removed += 1
                continue
            key = payload.get("key", {})
            expected = code_fingerprint(key.get("experiment_id"))
            if key.get("code_fp") != expected:
                path.unlink(missing_ok=True)
                removed += 1
        return removed
