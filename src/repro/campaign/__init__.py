"""Campaign orchestration: run the experiment registry at scale.

The paper's characterization took weeks of FPGA time across 316 chips;
this package is the software equivalent of that lab infrastructure.  It
schedules the (deterministic, embarrassingly parallel) experiment registry
over a process pool, persists every result in a content-addressed artifact
store, and records a manifest plus JSONL event log per run so campaigns
are observable and resumable.

Typical use::

    from repro.campaign import run_campaign
    summary = run_campaign(scale=ExperimentScale.small(), jobs=4)
    summary.results["fig04"].print()

or from the command line::

    python -m repro campaign --scale small --jobs 4
"""

from .events import (
    CACHE_HIT,
    CAMPAIGN_FINISHED,
    CAMPAIGN_STARTED,
    POOL_RESTART,
    TASK_FAILED,
    TASK_FINISHED,
    TASK_REQUEUED,
    TASK_STARTED,
    WORKER_CRASHED,
    CampaignEvent,
    EventLog,
    read_events,
    render_event,
)
from .runner import CampaignRunner, CampaignSummary, TaskOutcome, run_campaign
from .shards import (
    ALL_CONFIGS,
    GRANULARITIES,
    SESSION_SHARDED,
    Task,
    merge_shard_results,
    plan_tasks,
)
from .store import (
    CORE_SUBSYSTEMS,
    EXPERIMENT_SUBSYSTEM_DEPS,
    ArtifactKey,
    ArtifactStore,
    code_fingerprint,
    default_root,
    scale_fingerprint,
    subsystem_fingerprint,
)

__all__ = [
    "ALL_CONFIGS",
    "ArtifactKey",
    "ArtifactStore",
    "CACHE_HIT",
    "CAMPAIGN_FINISHED",
    "CAMPAIGN_STARTED",
    "CampaignEvent",
    "CORE_SUBSYSTEMS",
    "CampaignRunner",
    "CampaignSummary",
    "EXPERIMENT_SUBSYSTEM_DEPS",
    "EventLog",
    "GRANULARITIES",
    "POOL_RESTART",
    "SESSION_SHARDED",
    "TASK_FAILED",
    "TASK_FINISHED",
    "TASK_REQUEUED",
    "TASK_STARTED",
    "Task",
    "TaskOutcome",
    "WORKER_CRASHED",
    "code_fingerprint",
    "default_root",
    "merge_shard_results",
    "plan_tasks",
    "read_events",
    "render_event",
    "run_campaign",
    "scale_fingerprint",
    "subsystem_fingerprint",
]
