"""Task planning: experiment-level and session-level work units.

An experiment whose rows/checks are computed independently per
:class:`CharacterizationSession` (one per module configuration) can be split
into one task per configuration and merged losslessly afterwards -- every
measurement is seeded by content (`stable_seed`), never by execution order,
so a merged sharded run is byte-identical to a whole serial run.

Experiments that pool measurements *across* sessions (fig04's global change
distribution, fig10's direction-reversal pool) are deliberately absent from
:data:`SESSION_SHARDED` and always run whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..disturbance.calibration import MODULE_CALIBRATIONS
from ..experiments.base import REPRESENTATIVE_CONFIGS, ExperimentResult

#: all Table 2 configurations, in calibration order
ALL_CONFIGS = tuple(c.config_id for c in MODULE_CALIBRATIONS)

#: experiment id -> ordered shard labels (module config ids).  Only
#: experiments whose runner accepts ``config_ids`` and aggregates strictly
#: per session may appear here.
SESSION_SHARDED: dict[str, tuple[str, ...]] = {
    "table2": ALL_CONFIGS,
    "fig05": REPRESENTATIVE_CONFIGS,
    "fig06": REPRESENTATIVE_CONFIGS,
    "fig07": REPRESENTATIVE_CONFIGS,
    "fig08": REPRESENTATIVE_CONFIGS,
    "fig09": REPRESENTATIVE_CONFIGS,
    "fig11": REPRESENTATIVE_CONFIGS,
    "attack_surface": REPRESENTATIVE_CONFIGS,
    "pud_reliability": REPRESENTATIVE_CONFIGS,
}

GRANULARITIES = ("auto", "experiment", "session")


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a whole experiment or one session shard."""

    experiment_id: str
    shard: Optional[str] = None
    kwargs: tuple = field(default_factory=tuple)  # sorted (name, value) pairs

    @property
    def label(self) -> str:
        if self.shard:
            return f"{self.experiment_id}[{self.shard}]"
        return self.experiment_id

    def run_kwargs(self) -> dict:
        kwargs = dict(self.kwargs)
        if self.shard is not None:
            kwargs["config_ids"] = (self.shard,)
        return kwargs


def plan_tasks(
    experiment_ids: list[str],
    granularity: str = "auto",
    jobs: int = 1,
    shard_filter: Optional[Sequence[str]] = None,
) -> list[Task]:
    """Expand experiment ids into schedulable tasks.

    ``granularity="experiment"`` keeps one task per experiment;
    ``"session"`` shards every shardable experiment; ``"auto"`` shards only
    when more than one worker is available (sharding costs nothing in
    results but adds per-task session setup, so it only pays off when it
    buys parallelism).

    ``shard_filter`` restricts shardable experiments to the listed shard
    labels (and forces sharding for them, regardless of granularity), so a
    caller can run e.g. one config's slice of the attack gauntlet.  A
    filter that matches none of an experiment's shards is an error;
    experiments that are not shardable ignore the filter and run whole.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity {granularity!r}; known: {GRANULARITIES}"
        )
    shard = granularity == "session" or (granularity == "auto" and jobs > 1)
    tasks: list[Task] = []
    for experiment_id in experiment_ids:
        configs = SESSION_SHARDED.get(experiment_id)
        if configs and shard_filter is not None:
            chosen = tuple(c for c in configs if c in shard_filter)
            if not chosen:
                raise ValueError(
                    f"shard filter {tuple(shard_filter)} matches no shard of "
                    f"{experiment_id!r}; known shards: {configs}"
                )
            tasks.extend(Task(experiment_id, shard=c) for c in chosen)
        elif shard and configs:
            tasks.extend(
                Task(experiment_id, shard=config) for config in configs
            )
        else:
            tasks.append(Task(experiment_id))
    return tasks


def merge_shard_results(
    experiment_id: str, parts: list[ExperimentResult]
) -> ExperimentResult:
    """Merge session-shard results back into one whole-experiment result.

    ``parts`` must be in shard declaration order (the order
    :data:`SESSION_SHARDED` lists the configs); rows and checks concatenate
    in that order, notes dedupe (each shard re-emits the same static note).
    """
    if not parts:
        raise ValueError(f"no shard results to merge for {experiment_id!r}")
    merged = ExperimentResult(experiment_id, parts[0].title)
    seen_notes: set[str] = set()
    for part in parts:
        merged.rows.extend(part.rows)
        merged.checks.update(part.checks)
        for note in part.notes:
            if note not in seen_notes:
                seen_notes.add(note)
                merged.notes.append(note)
    return merged
