"""Campaign observability: a JSONL event log and a thin progress renderer.

Every state transition in a campaign -- experiment started / finished /
failed, cache hit, worker crash -- is one :class:`CampaignEvent` appended to
``runs/<run_id>/events.jsonl``.  The log is the single source of progress
truth: live progress on a terminal is just :func:`render_event` applied to
each event as it is emitted, and a killed campaign's log shows exactly which
artifacts completed before the kill.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Iterator, Optional

from ..obs import NULL_OBS

# event kinds, in rough lifecycle order
CAMPAIGN_STARTED = "campaign_started"
TASK_STARTED = "task_started"
TASK_FINISHED = "task_finished"
TASK_FAILED = "task_failed"
CACHE_HIT = "cache_hit"
WORKER_CRASHED = "worker_crashed"
TASK_REQUEUED = "task_requeued"
POOL_RESTART = "pool_restart"
CAMPAIGN_FINISHED = "campaign_finished"


@dataclass
class CampaignEvent:
    """One line of the campaign event log."""

    event: str
    #: experiment id (or None for campaign-level events)
    experiment_id: Optional[str] = None
    #: shard label when the task is one session-granularity slice
    shard: Optional[str] = None
    #: worker identity ("serial", "pool-3", ...)
    worker: Optional[str] = None
    #: wall time of the finished/failed task, seconds
    elapsed: Optional[float] = None
    #: "hit" or "miss" on task completion events
    cache: Optional[str] = None
    error: Optional[str] = None
    #: free-form campaign-level payload (counts, run id, ...)
    detail: dict = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)

    def to_json(self) -> str:
        payload = {k: v for k, v in asdict(self).items() if v not in (None, {})}
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "CampaignEvent":
        payload = json.loads(line)
        return cls(**{k: payload.get(k) for k in cls.__dataclass_fields__
                      if k in payload})

    @property
    def label(self) -> Optional[str]:
        if self.experiment_id is None:
            return None
        if self.shard:
            return f"{self.experiment_id}[{self.shard}]"
        return self.experiment_id


def render_event(event: CampaignEvent) -> Optional[str]:
    """One human-readable progress line per event, or None to stay quiet.

    This is deliberately a *renderer only*: no timing, counting or state
    lives here -- it all comes in on the event.
    """
    if event.event == CAMPAIGN_STARTED:
        detail = event.detail or {}
        return (
            f"campaign {detail.get('run_id', '?')}: "
            f"{detail.get('tasks', '?')} tasks, jobs={detail.get('jobs', '?')}"
        )
    if event.event == TASK_FINISHED:
        return f"{event.label} done in {event.elapsed:.1f}s [{event.worker}]"
    if event.event == CACHE_HIT:
        return f"{event.label} cached (saved {event.elapsed:.1f}s)"
    if event.event == TASK_FAILED:
        return f"{event.label} FAILED: {event.error}"
    if event.event == WORKER_CRASHED:
        where = f" while running {event.label}" if event.label else ""
        return f"worker pool crashed{where} ({event.error})"
    if event.event == TASK_REQUEUED:
        attempt = (event.detail or {}).get("restart", "?")
        return f"{event.label} requeued after pool crash (restart #{attempt})"
    if event.event == POOL_RESTART:
        detail = event.detail or {}
        mode = detail.get("mode", "pool")
        action = ("falling back to serial execution" if mode == "serial"
                  else "restarting worker pool")
        return (
            f"{action} (#{detail.get('restart', '?')}), "
            f"{detail.get('remaining', '?')} task(s) requeued"
        )
    if event.event == CAMPAIGN_FINISHED:
        detail = event.detail or {}
        return (
            f"campaign finished: {detail.get('executed', 0)} executed, "
            f"{detail.get('cached', 0)} cached, "
            f"{detail.get('failed', 0)} failed "
            f"in {event.elapsed:.1f}s"
        )
    return None


class EventLog:
    """Append-only JSONL event sink, optionally mirrored to a stream.

    ``path=None`` keeps the log in memory only (used by one-off report
    generation when no campaign directory is wanted).  When an ``obs``
    registry is attached, every emitted event also bumps the
    ``campaign.events`` counter labeled by kind, so the run's metrics
    snapshot and its event log can be cross-checked against each other.
    """

    def __init__(self, path: Optional[Path] = None, stream: Optional[IO] = None,
                 obs=None):
        self.path = Path(path) if path is not None else None
        self.stream = stream
        self.obs = obs if obs is not None else NULL_OBS
        self.events: list[CampaignEvent] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, event: CampaignEvent) -> CampaignEvent:
        self.events.append(event)
        self.obs.inc("campaign.events", kind=event.event)
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(event.to_json() + "\n")
        if self.stream is not None:
            line = render_event(event)
            if line is not None:
                self.stream.write(line + "\n")
                self.stream.flush()
        return event


def read_events(path: Path | str) -> Iterator[CampaignEvent]:
    """Parse an ``events.jsonl`` file back into events."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield CampaignEvent.from_json(line)
