"""The campaign runner: fan the experiment registry out across workers.

Because every experiment is deterministic (content-hash seeding) and every
task is independent, a campaign is embarrassingly parallel: the runner
plans tasks (whole experiments, or per-config session shards for the
experiments that support it), skips everything already in the artifact
store, executes the rest on a process pool, and persists each result as it
lands.  A killed campaign therefore resumes for free -- re-running it skips
the completed artifacts and only executes what is missing.

Worker crashes (OOM killer, segfault in a native extension) break the whole
``ProcessPoolExecutor``; the runner restarts the pool and retries the
not-yet-finished tasks up to ``max_pool_restarts`` times, then falls back
to in-process serial execution so a flaky pool can never lose a campaign.
"""

from __future__ import annotations

import os
import time
import uuid
import dataclasses
import json
import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional, Sequence

from ..core.scale import ExperimentScale
from ..experiments import EXPERIMENTS, run_experiment
from ..experiments.base import ExperimentResult
from ..obs import NULL_OBS, AnyObs, Obs
from .events import (
    CACHE_HIT,
    CAMPAIGN_FINISHED,
    CAMPAIGN_STARTED,
    POOL_RESTART,
    TASK_FAILED,
    TASK_FINISHED,
    TASK_REQUEUED,
    TASK_STARTED,
    WORKER_CRASHED,
    CampaignEvent,
    EventLog,
)
from .shards import SESSION_SHARDED, Task, merge_shard_results, plan_tasks
from .store import ArtifactStore, code_fingerprint, scale_fingerprint

#: crash-injection hook for exercising the pool-restart path end to end:
#: ``REPRO_CRASH_WORKER_ONCE="<experiment_id>:<flag_path>"`` makes the first
#: pool worker that picks up that experiment die hard (``os._exit``), exactly
#: once (the flag file is the at-most-once latch).  The serial fallback and
#: ``jobs=1`` runs are never killed -- the hook only fires in pool children.
CRASH_ENV = "REPRO_CRASH_WORKER_ONCE"


def _maybe_crash_for_test(experiment_id: str) -> None:
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    target, _, flag_path = spec.partition(":")
    if not flag_path or (target and target != experiment_id):
        return
    if multiprocessing.current_process().name == "MainProcess":
        return
    try:
        flag = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return  # someone already crashed for this flag
    os.close(flag)
    os._exit(3)


def _execute_task(payload: tuple) -> tuple[dict, float, str]:
    """Process-pool entry point: run one task, return a picklable triple."""
    experiment_id, shard, kwargs, scale = payload
    _maybe_crash_for_test(experiment_id)
    task = Task(experiment_id, shard=shard, kwargs=kwargs)
    started = time.perf_counter()
    result = run_experiment(task.experiment_id, scale, **task.run_kwargs())
    elapsed = time.perf_counter() - started
    return result.to_dict(), elapsed, multiprocessing.current_process().name


@dataclass
class TaskOutcome:
    """What happened to one scheduled task."""

    task: Task
    status: str  # "cached" | "executed" | "failed"
    result: Optional[ExperimentResult] = None
    elapsed: float = 0.0
    worker: Optional[str] = None
    error: Optional[str] = None


@dataclass
class CampaignSummary:
    """Everything a caller needs after :meth:`CampaignRunner.run`."""

    run_id: str
    run_dir: Path
    scale: ExperimentScale
    #: merged per-experiment results, in requested order (failed ones absent)
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    #: wall time attributed to each experiment (sum over its tasks)
    elapsed: dict[str, float] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    outcomes: list[TaskOutcome] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    failed: int = 0
    #: how many times the process pool died and was rebuilt
    pool_restarts: int = 0
    total_elapsed: float = 0.0

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    @property
    def events_path(self) -> Path:
        return self.run_dir / "events.jsonl"

    @property
    def obs_path(self) -> Path:
        return self.run_dir / "obs.json"


class CampaignRunner:
    """Schedule the experiment registry over an artifact store."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        scale: Optional[ExperimentScale] = None,
        jobs: int = 1,
        granularity: str = "auto",
        force: bool = False,
        max_pool_restarts: int = 2,
        stream: Optional[IO] = None,
        run_id: Optional[str] = None,
        shard_filter: Optional[Sequence[str]] = None,
        obs: Optional[AnyObs] = None,
    ):
        self.store = store if store is not None else ArtifactStore()
        self.scale = scale or ExperimentScale.default()
        self.jobs = max(1, int(jobs))
        self.granularity = granularity
        self.force = force
        self.max_pool_restarts = max_pool_restarts
        self.stream = stream
        self.shard_filter = tuple(shard_filter) if shard_filter else None
        self.run_id = run_id or time.strftime("%Y%m%dT%H%M%S") + "-" + uuid.uuid4().hex[:6]
        # a campaign records by default: the per-run obs.json is how
        # `repro trace` answers "what actually happened" after the fact
        self.obs = obs if obs is not None else Obs()

    # ------------------------------------------------------------------
    def run(self, experiment_ids: Optional[Sequence[str]] = None) -> CampaignSummary:
        ids = list(experiment_ids) if experiment_ids else sorted(EXPERIMENTS)
        unknown = [i for i in ids if i not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}"
            )
        tasks = plan_tasks(ids, self.granularity, self.jobs,
                           shard_filter=self.shard_filter)
        summary = CampaignSummary(
            run_id=self.run_id,
            run_dir=self.store.runs_dir / self.run_id,
            scale=self.scale,
        )
        summary.run_dir.mkdir(parents=True, exist_ok=True)
        log = EventLog(summary.events_path, stream=self.stream, obs=self.obs)
        started = time.perf_counter()
        log.emit(CampaignEvent(CAMPAIGN_STARTED, detail={
            "run_id": self.run_id,
            "tasks": len(tasks),
            "jobs": self.jobs,
            "experiments": ids,
            "scale_fp": scale_fingerprint(self.scale),
            "code_fp": code_fingerprint(),
        }))

        outcomes: dict[Task, TaskOutcome] = {}
        pending: list[Task] = []
        for task in tasks:
            outcome = None if self.force else self._from_cache(task, log)
            if outcome is not None:
                outcomes[task] = outcome
            else:
                pending.append(task)

        if pending:
            pending = self._order_longest_first(pending)
            if self.jobs == 1:
                self._run_serial(pending, outcomes, log)
            else:
                summary.pool_restarts = self._run_pool(pending, outcomes, log)

        self._merge_and_record(ids, tasks, outcomes, summary)
        summary.total_elapsed = time.perf_counter() - started
        self.obs.observe_s("campaign.run_s", summary.total_elapsed)
        log.emit(CampaignEvent(CAMPAIGN_FINISHED, elapsed=summary.total_elapsed,
                               detail={"executed": summary.executed,
                                       "cached": summary.cached,
                                       "failed": summary.failed}))
        self._write_manifest(summary, ids)
        self.obs.export_json(summary.obs_path)
        return summary

    # -- scheduling ----------------------------------------------------
    def _prior_elapsed(self) -> dict[tuple, float]:
        """Per-task wall time from earlier runs' manifests, newest wins.

        Unreadable or half-written manifests are skipped -- scheduling is a
        hint, never a correctness dependency.
        """
        manifests = []
        runs_dir = self.store.runs_dir
        if not runs_dir.exists():
            return {}
        for path in runs_dir.glob("*/manifest.json"):
            try:
                manifests.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue
        manifests.sort(key=lambda m: float(m.get("created_at") or 0.0))
        elapsed: dict[tuple, float] = {}
        for manifest in manifests:
            for entry in manifest.get("tasks", []):
                if entry.get("status") == "failed":
                    continue
                shard = entry.get("shard")
                if isinstance(shard, list):
                    shard = tuple(shard)
                value = float(entry.get("elapsed") or 0.0)
                if value > 0.0:
                    elapsed[(entry.get("experiment_id"), shard)] = value
        return elapsed

    def _order_longest_first(self, pending: list[Task]) -> list[Task]:
        """Submit the historically slowest tasks first.

        With a pool, launching the long poles early minimizes the makespan
        tail (a table2 shard finishing last on an otherwise idle pool);
        tasks with no recorded history keep their declared order after the
        known ones -- the sort is stable and unknown tasks share key 0.
        """
        prior = self._prior_elapsed()
        if not prior:
            return pending
        return sorted(
            pending,
            key=lambda t: -prior.get((t.experiment_id, t.shard), 0.0),
        )

    # -- cache ---------------------------------------------------------
    def _from_cache(self, task: Task, log: EventLog) -> Optional[TaskOutcome]:
        key = self.store.key(task.experiment_id, self.scale, task.shard)
        payload = self.store.get_payload(key)
        if payload is None:
            return None
        saved = float(payload.get("elapsed") or 0.0)
        log.emit(CampaignEvent(CACHE_HIT, experiment_id=task.experiment_id,
                               shard=task.shard, elapsed=saved, cache="hit",
                               worker="cache"))
        self.obs.inc("campaign.tasks", status="cached")
        return TaskOutcome(
            task, "cached",
            result=ExperimentResult.from_dict(payload["result"]),
            elapsed=saved, worker="cache",
        )

    def _record_success(
        self, task: Task, result_dict: dict, elapsed: float, worker: str,
        outcomes: dict[Task, TaskOutcome], log: EventLog,
    ) -> None:
        result = ExperimentResult.from_dict(result_dict)
        key = self.store.key(task.experiment_id, self.scale, task.shard)
        self.store.put(key, result, elapsed, worker=worker)
        outcomes[task] = TaskOutcome(task, "executed", result=result,
                                     elapsed=elapsed, worker=worker)
        self.obs.inc("campaign.tasks", status="executed")
        self.obs.observe_s(f"campaign.task_s.{task.experiment_id}", elapsed)
        log.emit(CampaignEvent(TASK_FINISHED, experiment_id=task.experiment_id,
                               shard=task.shard, elapsed=elapsed,
                               cache="miss", worker=worker))

    def _record_failure(
        self, task: Task, error: BaseException,
        outcomes: dict[Task, TaskOutcome], log: EventLog, worker: str,
    ) -> None:
        message = f"{type(error).__name__}: {error}"
        outcomes[task] = TaskOutcome(task, "failed", error=message, worker=worker)
        self.obs.inc("campaign.tasks", status="failed")
        self.obs.inc("campaign.task_errors", error=type(error).__name__)
        log.emit(CampaignEvent(TASK_FAILED, experiment_id=task.experiment_id,
                               shard=task.shard, error=message, worker=worker))

    # -- execution paths ----------------------------------------------
    def _run_serial(
        self, pending: list[Task], outcomes: dict[Task, TaskOutcome],
        log: EventLog,
    ) -> None:
        for task in pending:
            log.emit(CampaignEvent(TASK_STARTED, experiment_id=task.experiment_id,
                                   shard=task.shard, worker="serial"))
            try:
                result_dict, elapsed, _ = _execute_task(
                    (task.experiment_id, task.shard, task.kwargs, self.scale)
                )
            except Exception as error:
                self._record_failure(task, error, outcomes, log, worker="serial")
            else:
                self._record_success(task, result_dict, elapsed, "serial",
                                     outcomes, log)

    def _run_pool(
        self, pending: list[Task], outcomes: dict[Task, TaskOutcome],
        log: EventLog,
    ) -> int:
        """Run ``pending`` on a process pool; returns the restart count.

        A :class:`BrokenProcessPool` poisons every outstanding future, so a
        single crash surfaces once per in-flight task; the crash event is
        attributed to the task whose future raised it, and every task left
        without an outcome gets a ``task_requeued`` event before the pool
        is rebuilt -- the JSONL log then accounts for each task's full
        history across restarts, not just its final completion.
        """
        remaining = list(pending)
        restarts = 0
        while remaining:
            crashed = False
            executor = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                futures = {}
                for task in remaining:
                    log.emit(CampaignEvent(TASK_STARTED, worker="pool",
                                           experiment_id=task.experiment_id,
                                           shard=task.shard))
                    futures[executor.submit(
                        _execute_task,
                        (task.experiment_id, task.shard, task.kwargs, self.scale),
                    )] = task
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        task = futures[future]
                        try:
                            result_dict, elapsed, worker = future.result()
                        except BrokenProcessPool as error:
                            crashed = True
                            log.emit(CampaignEvent(
                                WORKER_CRASHED,
                                experiment_id=task.experiment_id,
                                shard=task.shard,
                                error=str(error) or "pool died",
                            ))
                        except Exception as error:
                            self._record_failure(task, error, outcomes, log,
                                                 worker="pool")
                        else:
                            self._record_success(task, result_dict, elapsed,
                                                 worker, outcomes, log)
                    if crashed:
                        break
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            remaining = [t for t in remaining if t not in outcomes]
            if not crashed or not remaining:
                return restarts
            restarts += 1
            serial = restarts > self.max_pool_restarts
            log.emit(CampaignEvent(POOL_RESTART, detail={
                "restart": restarts, "remaining": len(remaining),
                "mode": "serial" if serial else "pool",
            }))
            for task in remaining:
                log.emit(CampaignEvent(TASK_REQUEUED,
                                       experiment_id=task.experiment_id,
                                       shard=task.shard,
                                       detail={"restart": restarts}))
            if serial:
                # the pool keeps dying; finish in-process so the campaign
                # still completes (and a poisoned task fails loudly)
                self._run_serial(remaining, outcomes, log)
                return restarts
        return restarts

    # -- merge + manifest ---------------------------------------------
    def _merge_and_record(
        self, ids: list[str], tasks: list[Task],
        outcomes: dict[Task, TaskOutcome], summary: CampaignSummary,
    ) -> None:
        by_experiment: dict[str, list[Task]] = {}
        for task in tasks:
            by_experiment.setdefault(task.experiment_id, []).append(task)
        for outcome in (outcomes[t] for t in tasks if t in outcomes):
            summary.outcomes.append(outcome)
            if outcome.status == "cached":
                summary.cached += 1
            elif outcome.status == "executed":
                summary.executed += 1
            else:
                summary.failed += 1
        for experiment_id in ids:
            experiment_tasks = by_experiment[experiment_id]
            task_outcomes = [outcomes.get(t) for t in experiment_tasks]
            errors = [o.error for o in task_outcomes if o and o.error]
            if errors or any(o is None for o in task_outcomes):
                summary.failures[experiment_id] = (
                    "; ".join(errors) or "not executed"
                )
                continue
            summary.elapsed[experiment_id] = sum(o.elapsed for o in task_outcomes)
            if len(experiment_tasks) == 1 and experiment_tasks[0].shard is None:
                summary.results[experiment_id] = task_outcomes[0].result
                continue
            merged = merge_shard_results(
                experiment_id, [o.result for o in task_outcomes]
            )
            summary.results[experiment_id] = merged
            # publish the merged result under the whole-experiment key too,
            # so experiment-granularity consumers (report, `repro run`) hit
            # -- but only when the shards cover the experiment's full
            # declared set: a shard-filtered partial run must never
            # masquerade as the whole result
            shards = tuple(t.shard for t in experiment_tasks)
            if shards != SESSION_SHARDED.get(experiment_id):
                continue
            whole_key = self.store.key(experiment_id, self.scale)
            if self.force or not self.store.has(whole_key):
                self.store.put(whole_key, merged,
                               summary.elapsed[experiment_id], worker="merge")

    def _write_manifest(self, summary: CampaignSummary, ids: list[str]) -> None:
        manifest = {
            "run_id": summary.run_id,
            "created_at": time.time(),
            "scale": dataclasses.asdict(self.scale),
            "scale_fp": scale_fingerprint(self.scale),
            "code_fp": code_fingerprint(),
            "jobs": self.jobs,
            "granularity": self.granularity,
            "force": self.force,
            "experiments": ids,
            "counts": {
                "executed": summary.executed,
                "cached": summary.cached,
                "failed": summary.failed,
            },
            "pool_restarts": summary.pool_restarts,
            "total_elapsed": summary.total_elapsed,
            "tasks": [
                {
                    "experiment_id": o.task.experiment_id,
                    "shard": o.task.shard,
                    "digest": self.store.key(
                        o.task.experiment_id, self.scale, o.task.shard
                    ).digest,
                    "status": o.status,
                    "elapsed": o.elapsed,
                    "worker": o.worker,
                    "error": o.error,
                }
                for o in summary.outcomes
            ],
        }
        tmp = summary.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=1))
        tmp.replace(summary.manifest_path)


def run_campaign(
    experiment_ids: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    jobs: int = 1,
    store: Optional[ArtifactStore] = None,
    granularity: str = "auto",
    force: bool = False,
    stream: Optional[IO] = None,
    shard_filter: Optional[Sequence[str]] = None,
) -> CampaignSummary:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(store=store, scale=scale, jobs=jobs,
                            granularity=granularity, force=force, stream=stream,
                            shard_filter=shard_filter)
    return runner.run(experiment_ids)
