"""End-to-end PuD attack synthesis and mitigation-gauntlet evaluation.

Closes the loop from characterization to security evaluation:

* :mod:`repro.attack.synthesis` -- searches refresh-synchronized,
  TRR-aware hammer schedules composing CoMRA/SiMRA primitives;
* :mod:`repro.attack.mitigations` -- the defense matrix (sampling TRR,
  PRAC variants, §8.1 countermeasure policies) as bank hooks and
  admission checks;
* :mod:`repro.attack.gauntlet` -- runs every synthesized attack against
  every mitigation through the DRAM Bender pipeline and scores
  exploitability.
"""

from .gauntlet import CellResult, run_cell, run_gauntlet
from .mitigations import (
    MITIGATIONS,
    PracHook,
    WeightedSamplingTrr,
    build_hook,
    policy_rejection,
)
from .synthesis import (
    MAX_POSTPONED_REFS,
    TECHNIQUES,
    AttackSpec,
    expected_aggressor_samples,
    schedule_score,
    synthesize_attacks,
    synthesize_schedule,
)

__all__ = [
    "AttackSpec",
    "CellResult",
    "MAX_POSTPONED_REFS",
    "MITIGATIONS",
    "PracHook",
    "TECHNIQUES",
    "WeightedSamplingTrr",
    "build_hook",
    "expected_aggressor_samples",
    "policy_rejection",
    "run_cell",
    "run_gauntlet",
    "schedule_score",
    "synthesize_attacks",
    "synthesize_schedule",
]
