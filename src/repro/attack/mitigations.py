"""The gauntlet's defense matrix: every mitigation as a bank hook.

Three kinds of defense face the synthesized attacks:

* the shipped :class:`~repro.trr.mechanism.SamplingTrr` (§7's target);
* PRAC variants (§8.2) adapted as :class:`PracHook` -- per-row counters fed
  from activation *events* so SiMRA's hidden multi-row activations are
  accounted, with back-off serviced immediately through
  :meth:`~repro.dram.bank.Bank.targeted_refresh`;
* the §8.1 countermeasure policies -- the weighted-contribution policy
  retrofitted into the sampler as :class:`WeightedSamplingTrr`, and the
  compute-region / clustered-decoder policies as *admission* checks that
  reject an attack's operations at the interface before it runs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..disturbance.calibration import TRR_CAPABLE_REF_PERIOD
from ..disturbance.distributions import rng_for
from ..dram.commands import ActivationEvent
from ..dram.errors import AddressError
from ..dram.module import DramModule
from ..mitigations.countermeasures import (
    ClusteredActivationDecoder,
    ComputeRegionPolicy,
    WeightedContributionPolicy,
)
from ..mitigations.prac import OpClass, PracConfig, PracCounters
from ..trr.mechanism import SamplingTrr
from .synthesis import AttackSpec

#: bank-blocking time of one RFM command (ns), the DDR5 tRFM ballpark
RFM_NS = 350.0

#: every mitigation the gauntlet knows, in evaluation order
MITIGATIONS: tuple[str, ...] = (
    "none",
    "sampling-trr",
    "weighted-trr",
    "prac-po-naive",
    "prac-po-wc",
    "prac-ao-wc",
    "compute-region",
    "clustered-decoder",
)


class PracHook:
    """PRAC as a bank hook: per-row counters fed from activation events.

    Counting at event granularity (not command granularity) is what makes
    PRAC PuD-correct: one SiMRA operation issues two ACT commands but
    activates up to 32 rows, and the counter mat must account every one of
    them (§8.2).  When a counter crosses the RDT the hook services the
    resulting back-off *immediately* -- refreshing the hot rows'
    neighborhoods via :meth:`~repro.dram.bank.Bank.targeted_refresh` --
    instead of waiting for the next REF, because a PuD attacker can cross
    the RDT many times within one tREFI.

    Deliberately *not* stream-capable (no ``on_act_stream``): the back-off
    must fire at the exact event where a counter crosses the RDT, so
    aggregating a whole ACT stretch into one batched call would move the
    targeted refreshes in time and change what the attack flips.  The
    host's compiled-chunked path detects the missing method and falls back
    to unrolled execution for PRAC cells.
    """

    def __init__(
        self,
        module: DramModule,
        config: PracConfig,
        warm_start: bool = False,
    ) -> None:
        self.module = module
        self.config = config
        self.warm_start = warm_start
        self._counters: dict[int, PracCounters] = {}
        self.acts_seen = 0
        self.refs_seen = 0
        self.rfms = 0
        self.stall_ns = 0.0
        self.targeted_refreshes = 0

    @property
    def stats(self) -> dict:
        """Counter snapshot, dict-shaped for report/gauntlet consumers."""
        return {
            "acts_seen": self.acts_seen,
            "refs_seen": self.refs_seen,
            "rfms": self.rfms,
            "stall_ns": self.stall_ns,
            "targeted_refreshes": self.targeted_refreshes,
        }

    def counters(self, bank: int) -> PracCounters:
        counters = self._counters.get(bank)
        if counters is None:
            counters = PracCounters(bank, self.config, warm_start=self.warm_start)
            self._counters[bank] = counters
        return counters

    # -- TrrHook interface ---------------------------------------------
    def on_act(self, bank: int, row: int, now_ns: float) -> None:
        # counting happens on events, where the true row group is visible
        self.acts_seen += 1

    def on_ref(self, bank: int, now_ns: float) -> list[int]:
        self.refs_seen += 1
        counters = self.counters(bank)
        if counters.back_off_pending is not None:
            # fallback path: a back-off raised outside any event window
            self.rfms += 1
            return counters.serve_rfm()
        return []

    def on_event(self, bank: int, event: ActivationEvent, times: float = 1.0) -> None:
        counters = self.counters(bank)
        if event.kind is ActivationEvent.Kind.SIMRA:
            op = OpClass.SIMRA
        elif event.kind is ActivationEvent.Kind.COMRA_PAIR:
            op = OpClass.COMRA
        else:
            op = OpClass.ACT
        self.stall_ns += counters.record(
            event.rows, op, times=max(1, int(times))
        )
        if counters.back_off_pending is not None:
            hot = counters.serve_rfm()
            self.rfms += 1
            self.stall_ns += RFM_NS
            self.targeted_refreshes += len(hot)
            self.module.bank(bank).targeted_refresh(hot, event.t_close_ns)


class WeightedSamplingTrr:
    """§8.1 weighted-contribution retrofit of the sampling TRR.

    Two changes versus :class:`~repro.trr.mechanism.SamplingTrr`: the
    tracker ingests activation *events* with
    :class:`WeightedContributionPolicy` weights (a SiMRA op adds the SiMRA
    weight to every activated row, not the two ACT commands the bus
    shows), and it keeps per-row weighted counts instead of a bounded
    FIFO, so a dummy flood cannot *evict* the aggressors -- it can only
    dilute their sampling probability, which the weights bound from below.
    """

    def __init__(
        self,
        policy: Optional[WeightedContributionPolicy] = None,
        capable_ref_period: int = TRR_CAPABLE_REF_PERIOD,
        seed: int = 0,
    ) -> None:
        self.policy = policy or WeightedContributionPolicy()
        self.capable_ref_period = capable_ref_period
        self._weights: dict[int, dict[int, float]] = {}
        self._rng = rng_for("weighted-trr", seed)
        self.acts_seen = 0
        self.refs_seen = 0
        self.targeted_refreshes = 0

    @property
    def stats(self) -> dict:
        """Counter snapshot, dict-shaped for report/gauntlet consumers."""
        return {
            "acts_seen": self.acts_seen,
            "refs_seen": self.refs_seen,
            "targeted_refreshes": self.targeted_refreshes,
        }

    def _bank_weights(self, bank: int) -> dict[int, float]:
        weights = self._weights.get(bank)
        if weights is None:
            weights = {}
            self._weights[bank] = weights
        return weights

    # -- TrrHook interface ---------------------------------------------
    def on_act(self, bank: int, row: int, now_ns: float) -> None:
        self.acts_seen += 1
        weights = self._bank_weights(bank)
        weights[row] = weights.get(row, 0.0) + 1.0

    def on_act_stream(self, bank: int, rows, times: int = 1) -> None:
        """Observe ``times`` repetitions of the ACT sequence ``rows``.

        Weight accumulation commutes and integer-valued float sums are
        exact, so adding ``count * times`` per distinct row equals the
        same number of sequential ``+ 1.0`` updates bit for bit.
        """
        rows = np.asarray(rows, dtype=np.int64)
        total = int(rows.size) * int(times)
        if total == 0:
            return
        self.acts_seen += total
        weights = self._bank_weights(bank)
        unique, counts = np.unique(rows, return_counts=True)
        for row, count in zip(unique.tolist(), counts.tolist()):
            weights[row] = weights.get(row, 0.0) + float(count * times)

    def on_event(self, bank: int, event: ActivationEvent, times: float = 1.0) -> None:
        if event.kind is ActivationEvent.Kind.SIMRA:
            extra = float(self.policy.simra_weight)
        elif event.kind is ActivationEvent.Kind.COMRA_PAIR:
            extra = float(self.policy.comra_weight)
        else:
            return
        weights = self._bank_weights(bank)
        for row in event.rows:
            weights[row] = weights.get(row, 0.0) + extra * max(1.0, times)

    def on_ref(self, bank: int, now_ns: float) -> list[int]:
        self.refs_seen += 1
        if self._rng.random() >= 1.0 / self.capable_ref_period:
            return []
        weights = self._bank_weights(bank)
        if not weights:
            return []
        rows = sorted(weights)
        total = sum(weights[row] for row in rows)
        pick = float(self._rng.random()) * total
        sampled = rows[-1]
        cumulative = 0.0
        for row in rows:
            cumulative += weights[row]
            if pick < cumulative:
                sampled = row
                break
        weights.clear()
        self.targeted_refreshes += 1
        return [sampled]


# ----------------------------------------------------------------------
# Admission policies (interface/decoder constraints)
# ----------------------------------------------------------------------
def policy_rejection(
    mitigation: str, module: DramModule, spec: AttackSpec
) -> Optional[str]:
    """Why the interface/decoder blocks ``spec`` before it runs, if it does.

    The compute-region policy rejects PuD operations whose operands leave
    the compute region; the clustered-activation decoder only exposes
    contiguous SiMRA groups, so double-sided SiMRA pairs do not exist.
    Plain (RowHammer) activations are never rejected.
    """
    if mitigation == "compute-region":
        policy = ComputeRegionPolicy(
            subarray_rows=module.geometry.rows_per_subarray
        )
        policy.reset()
        offsets = [
            row % module.geometry.rows_per_subarray for row in spec.activated
        ]
        try:
            if spec.technique == "simra":
                policy.check_simra(offsets)
            elif spec.technique == "comra":
                policy.check_comra(offsets[0], offsets[-1])
        except AddressError as error:
            return str(error)
    if mitigation == "clustered-decoder" and spec.technique == "simra":
        decoder = ClusteredActivationDecoder()
        decoder.reset()
        if decoder.sandwiched_victims(spec.activated):
            return (
                "decoder exposes only contiguous groups; the double-sided "
                "pair's sandwiched victims are unreachable"
            )
    return None


def build_hook(mitigation: str, module: DramModule, seed: int = 0):
    """Instantiate the bank hook for one mitigation (None for 'none').

    The compute-region and clustered-decoder rows keep the shipped
    sampling TRR attached: they are interface constraints layered on a
    chip that still has its own mitigation.
    """
    if mitigation == "none":
        return None
    if mitigation == "sampling-trr":
        return SamplingTrr(seed=seed)
    if mitigation == "weighted-trr":
        return WeightedSamplingTrr(seed=seed)
    if mitigation == "prac-po-naive":
        return PracHook(module, PracConfig.po_naive())
    if mitigation == "prac-po-wc":
        return PracHook(module, PracConfig.po_weighted())
    if mitigation == "prac-ao-wc":
        return PracHook(module, PracConfig.ao_weighted())
    if mitigation in ("compute-region", "clustered-decoder"):
        return SamplingTrr(seed=seed)
    raise KeyError(
        f"unknown mitigation {mitigation!r}; known: {MITIGATIONS}"
    )
