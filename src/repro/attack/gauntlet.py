"""Mitigation gauntlet: synthesized attacks vs. the defense matrix.

One *cell* of the gauntlet runs one synthesized :class:`AttackSpec`
against one mitigation on a freshly instantiated module, through the real
:class:`~repro.bender.host.DramBenderHost` command pipeline, under a fixed
ACT-command budget (the attacker's cost cap).  The harness records
exploitability metrics in the Fig. 24 / Table 4 direction: whether any
victim bit flipped, the time and hammer count to the first flip, and the
flip yield per refresh window.

Admission-style countermeasures (compute region, clustered decoder) can
reject an attack's operations at the interface before a single command is
issued; such cells are reported as *blocked* at zero attacker cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..bender.host import DramBenderHost
from ..disturbance.calibration import DataPattern, FlipDirection
from ..disturbance.distributions import stable_seed
from ..dram.module import DramModule
from ..dram.vendors import make_module
from .mitigations import MITIGATIONS, build_hook, policy_rejection
from .synthesis import AttackSpec, synthesize_attacks


@dataclass
class CellResult:
    """Outcome of one (attack, mitigation) gauntlet cell."""

    config_id: str
    attack: str
    technique: str
    mitigation: str
    act_budget: int
    #: interface/decoder admission verdict
    blocked: bool = False
    blocked_reason: str = ""
    #: schedule accounting
    rounds_run: int = 0
    hammers_issued: int = 0
    acts_issued: int = 0
    duration_ns: float = 0.0
    trefw_ns: float = 0.0
    #: exploitability metrics
    flips: int = 0
    first_flip_hammers: Optional[int] = None
    first_flip_ns: Optional[float] = None
    #: defense-side accounting, harvested from the hook's stats
    targeted_refreshes: int = 0
    rfms: int = 0
    stall_ns: float = 0.0
    #: synthesis diagnostics carried through for the report
    expected_samples_per_round: float = 0.0
    notes: list = field(default_factory=list)

    @property
    def exploited(self) -> bool:
        return self.flips > 0

    @property
    def flips_per_refresh_window(self) -> float:
        """Flips extrapolated to one full tREFW of attack time."""
        if self.flips == 0 or self.duration_ns <= 0 or self.trefw_ns <= 0:
            return 0.0
        return self.flips * self.trefw_ns / self.duration_ns

    @property
    def acts_per_flip(self) -> Optional[float]:
        if self.flips == 0:
            return None
        return self.acts_issued / self.flips

    def to_row(self) -> dict:
        """Flat report row for :class:`ExperimentResult.rows`."""
        return {
            "config": self.config_id,
            "attack": self.attack,
            "technique": self.technique,
            "mitigation": self.mitigation,
            "blocked": self.blocked,
            "flips": self.flips,
            "first_flip_hammers": (
                -1 if self.first_flip_hammers is None else self.first_flip_hammers
            ),
            "first_flip_ms": (
                -1.0
                if self.first_flip_ns is None
                else self.first_flip_ns / 1e6
            ),
            "flips_per_trefw": self.flips_per_refresh_window,
            "acts_issued": self.acts_issued,
            "acts_per_flip": (
                -1.0 if self.acts_per_flip is None else self.acts_per_flip
            ),
            "targeted_refreshes": self.targeted_refreshes,
            "rfms": self.rfms,
            "stall_ns": self.stall_ns,
        }


def _initialize(
    host: DramBenderHost,
    module: DramModule,
    spec: AttackSpec,
) -> np.ndarray:
    """Write the attack's data pattern; returns the expected victim bytes."""
    nbytes = module.geometry.row_bytes
    rows = {
        module.to_logical(row): spec.data_pattern.fill(nbytes)
        for row in spec.activated
    }
    expected = spec.data_pattern.negated.fill(nbytes)
    for victim in spec.victims:
        rows[module.to_logical(victim)] = expected
    host.write_rows(spec.bank, rows)
    return expected


def _damage_crossed(module: DramModule, spec: AttackSpec) -> bool:
    """Non-destructive peek: has any victim earned a flip already?

    ``coupled_damage`` reads the fault model's accumulators without
    touching charge state, so polling it between rounds does not disturb
    the experiment the way a read-back (which restores charge) would.
    """
    model = module.model
    for victim in spec.victims:
        for direction in FlipDirection:
            if model.coupled_damage(spec.bank, victim, direction) >= 1.0:
                return True
    return False


def _count_flips(
    host: DramBenderHost,
    module: DramModule,
    spec: AttackSpec,
    expected: np.ndarray,
) -> int:
    flips = 0
    read = host.read_rows(
        spec.bank, [module.to_logical(v) for v in spec.victims]
    )
    for data in read.values():
        flips += int((np.unpackbits(data) != np.unpackbits(expected)).sum())
    return flips


def run_cell(
    config_id: str,
    spec: AttackSpec,
    mitigation: str,
    act_budget: int,
    serial: int = 0,
    stop_after_first_flip: bool = True,
) -> CellResult:
    """Run one gauntlet cell on a fresh module instance.

    The module is re-instantiated per cell so no charge or tracker state
    leaks between cells; determinism comes from content-addressed seeding
    over (config, attack, mitigation, serial).
    """
    if spec.config_id != config_id:
        raise ValueError(
            f"spec {spec.name!r} was synthesized for {spec.config_id!r}, "
            f"not {config_id!r}"
        )
    module = make_module(config_id, serial=serial)
    cell = CellResult(
        config_id=config_id,
        attack=spec.name,
        technique=spec.technique,
        mitigation=mitigation,
        act_budget=int(act_budget),
        trefw_ns=module.timing.tREFW,
        expected_samples_per_round=spec.expected_samples_per_round,
    )

    reason = policy_rejection(mitigation, module, spec)
    if reason is not None:
        cell.blocked = True
        cell.blocked_reason = reason
        cell.notes.append(f"blocked at admission: {reason}")
        return cell

    seed = stable_seed("attack-gauntlet", config_id, spec.name, mitigation, serial)
    hook = build_hook(mitigation, module, seed=seed)
    module.attach_trr(hook)
    try:
        host = DramBenderHost(module)
        expected = _initialize(host, module, spec)
        round_program = spec.build_round(module)
        start_ns = host.now_ns
        rounds = spec.rounds_for_budget(act_budget)
        for round_index in range(rounds):
            host.run(round_program)
            cell.rounds_run = round_index + 1
            if cell.first_flip_hammers is None and _damage_crossed(module, spec):
                cell.first_flip_hammers = cell.rounds_run * spec.hammers_per_round
                cell.first_flip_ns = host.now_ns - start_ns
                if stop_after_first_flip:
                    break
        cell.hammers_issued = cell.rounds_run * spec.hammers_per_round
        cell.acts_issued = cell.rounds_run * spec.acts_per_round
        cell.duration_ns = host.now_ns - start_ns
        cell.flips = _count_flips(host, module, spec, expected)
    finally:
        module.attach_trr(None)

    stats = getattr(hook, "stats", None) or {}
    cell.targeted_refreshes = int(stats.get("targeted_refreshes", 0))
    cell.rfms = int(stats.get("rfms", 0))
    cell.stall_ns = float(stats.get("stall_ns", 0.0))
    if cell.flips and cell.first_flip_hammers is None:
        # flips materialized at read-back without the peek crossing 1.0
        # mid-run (possible right at the budget boundary)
        cell.first_flip_hammers = cell.hammers_issued
        cell.first_flip_ns = cell.duration_ns
    return cell


def run_gauntlet(
    config_id: str,
    act_budget: int,
    mitigations: Optional[Sequence[str]] = None,
    attacks: Optional[Sequence[str]] = None,
    serial: int = 0,
    simra_rows: int = 16,
) -> list[CellResult]:
    """The full (attack x mitigation) matrix for one module configuration.

    ``attacks`` / ``mitigations`` filter by name; unknown names raise
    ``KeyError`` so typos fail loudly rather than silently shrinking the
    matrix.
    """
    module = make_module(config_id, serial=serial)
    specs = synthesize_attacks(module, simra_rows=simra_rows)
    if attacks is not None:
        known = {spec.name: spec for spec in specs}
        missing = [name for name in attacks if name not in known]
        if missing:
            raise KeyError(
                f"unknown attacks {missing} for {config_id}; "
                f"known: {sorted(known)}"
            )
        specs = tuple(known[name] for name in attacks)
    chosen = tuple(mitigations) if mitigations is not None else MITIGATIONS
    unknown = [name for name in chosen if name not in MITIGATIONS]
    if unknown:
        raise KeyError(f"unknown mitigations {unknown}; known: {MITIGATIONS}")
    return [
        run_cell(config_id, spec, mitigation, act_budget, serial=serial)
        for spec in specs
        for mitigation in chosen
    ]
