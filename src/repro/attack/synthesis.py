"""TRR-aware PuD attack synthesis: the §7 attacker, automated.

The characterization subsystems measure *how cheap* CoMRA/SiMRA make read
disturbance; this module closes the loop and turns those measurements into
concrete hammer schedules.  A schedule is expressed per *round* -- a fixed
sequence of refresh windows the attacker repeats: one or more hammer
windows (packed with double-sided RowHammer, CoMRA cycles or SiMRA
triggers at the ``MAX_ACTS_PER_TREFI`` command budget), followed by
dummy-flood windows that fill the sampling TRR's 450-entry buffer with a
harmless row, with REF commands at the memory controller's tREFI cadence.

The synthesis engine searches the schedule space (dummy-window count x
refresh postponement) against an analytic model of :class:`SamplingTrr`.
The decisive trick it discovers is *refresh postponement*: DDR4 permits
deferring up to 8 REF commands, so a round that issues all its REFs
back-to-back after >= 450 dummy ACTs guarantees the sampler's buffer holds
no aggressor at any TRR-capable REF -- the aggressors are never sampled and
their victims' disturbance accumulates unboundedly across rounds, while a
naive schedule loses its progress every time the sampler fires.

Row targeting mirrors the §7 methodology: each technique aims at the
sentinel row its profiling phase would surface (the population-minimum
HC_first row), and the module's calibration minima parameterize the search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bender.program import ProgramBuilder, TestProgram
from ..core.patterns import (
    COMRA_DELAY_NS,
    SIMRA_ACT_TO_PRE_NS,
    SIMRA_PRE_TO_ACT_NS,
    T_AGG_ON_NOMINAL_NS,
    simra_pair_for,
    simra_pair_sandwiching,
)
from ..disturbance.calibration import (
    MAX_ACTS_PER_TREFI,
    TRR_CAPABLE_REF_PERIOD,
    TRR_SAMPLER_WINDOW,
    DataPattern,
    Mechanism,
)
from ..dram.module import DramModule

#: DDR4 allows postponing up to 8 REF commands (JEDEC 79-4); synthesized
#: schedules never defer more refresh windows than this.
MAX_POSTPONED_REFS = 8

#: attack techniques the synthesizer composes
TECHNIQUES = ("rowhammer", "comra", "simra")


@dataclass(frozen=True)
class AttackSpec:
    """One synthesized hammer schedule, expressed per refresh-window round."""

    name: str
    technique: str  # one of TECHNIQUES
    config_id: str
    bank: int
    #: physical rows the ACT commands address
    aggressors: tuple[int, ...]
    #: physical rows actually activated (SiMRA activates the whole group)
    activated: tuple[int, ...]
    #: physical victim rows monitored for flips
    victims: tuple[int, ...]
    #: far physical row used to flood the TRR sampler
    dummy: int
    data_pattern: DataPattern
    hammer_windows: int = 1
    dummy_windows: int = 0
    postpone_refs: bool = False
    acts_per_trefi: int = MAX_ACTS_PER_TREFI
    #: SiMRA group size (0 for other techniques)
    n_rows: int = 0
    #: synthesis diagnostics: modeled aggressor samples per round against
    #: the sampling TRR, and the schedule's search score
    expected_samples_per_round: float = 0.0
    sync_score: float = 0.0

    # -- schedule arithmetic -------------------------------------------
    @property
    def windows_per_round(self) -> int:
        return self.hammer_windows + self.dummy_windows

    @property
    def hammers_per_window(self) -> int:
        """Hammers per window: every technique spends two ACTs per hammer
        (a double-sided pass, a CoMRA cycle, or a SiMRA trigger)."""
        return self.acts_per_trefi // 2

    @property
    def hammers_per_round(self) -> int:
        return self.hammer_windows * self.hammers_per_window

    @property
    def acts_per_round(self) -> int:
        return self.windows_per_round * self.acts_per_trefi

    def rounds_for_budget(self, act_budget: int) -> int:
        return max(1, int(act_budget) // self.acts_per_round)

    # -- program construction ------------------------------------------
    def build_round(self, module: DramModule) -> TestProgram:
        """One round as a DRAM Bender program.

        REF commands follow the controller's tREFI cadence; with
        ``postpone_refs`` the round's REFs are deferred and issued
        back-to-back after the last dummy window (within DDR4's
        8-postponed-REF allowance), so the sampler's buffer holds only
        dummy activations whenever a TRR-capable REF can fire.
        """
        timing = module.timing
        trp, tras, trefi = timing.tRP, timing.tRAS, timing.tREFI
        builder = ProgramBuilder(f"{self.name}@{self.config_id}")
        dummy = module.to_logical(self.dummy)

        def close_window(used_ns: float) -> None:
            if trefi > used_ns:
                builder.nop(trefi - used_ns)
            if not self.postpone_refs:
                builder.ref()

        def hammer_window() -> None:
            if self.technique == "comra":
                src, dst = (module.to_logical(r) for r in self.aggressors)
                cycles = self.acts_per_trefi // 2
                for _ in range(cycles):
                    builder.act(self.bank, src, trp)
                    builder.pre(self.bank, tras)
                    builder.act(self.bank, dst, COMRA_DELAY_NS)
                    builder.pre(self.bank, tras)
                close_window(cycles * (trp + tras + COMRA_DELAY_NS + tras))
            elif self.technique == "simra":
                row_a, row_b = (module.to_logical(r) for r in self.aggressors)
                ops = self.acts_per_trefi // 2
                for _ in range(ops):
                    builder.act(self.bank, row_a, trp)
                    builder.pre(self.bank, SIMRA_ACT_TO_PRE_NS)
                    builder.act(self.bank, row_b, SIMRA_PRE_TO_ACT_NS)
                    builder.pre(self.bank, tras)
                close_window(
                    ops * (trp + SIMRA_ACT_TO_PRE_NS + SIMRA_PRE_TO_ACT_NS + tras)
                )
            else:
                rows = [module.to_logical(r) for r in self.aggressors]
                for slot in range(self.acts_per_trefi):
                    builder.act(self.bank, rows[slot % len(rows)], trp)
                    builder.pre(self.bank, T_AGG_ON_NOMINAL_NS)
                close_window(self.acts_per_trefi * (trp + T_AGG_ON_NOMINAL_NS))

        def dummy_window() -> None:
            for _ in range(self.acts_per_trefi):
                builder.act(self.bank, dummy, trp)
                builder.pre(self.bank, tras)
            close_window(self.acts_per_trefi * (trp + tras))

        for _ in range(self.hammer_windows):
            hammer_window()
        for _ in range(self.dummy_windows):
            dummy_window()
        if self.postpone_refs:
            for _ in range(self.windows_per_round):
                builder.ref()
        return builder.build()


# ----------------------------------------------------------------------
# Analytic sampler model + schedule search
# ----------------------------------------------------------------------
def expected_aggressor_samples(
    hammer_windows: int,
    dummy_windows: int,
    acts_per_trefi: int = MAX_ACTS_PER_TREFI,
    postpone_refs: bool = False,
    window: int = TRR_SAMPLER_WINDOW,
    capable_ref_period: int = TRR_CAPABLE_REF_PERIOD,
) -> float:
    """Expected aggressor rows sampled per round by :class:`SamplingTrr`.

    Walks the round's ACT stream (aggressor vs dummy) through the
    sampler's sliding window at steady state (second of two consecutive
    rounds) and sums, at each REF position, the capable-REF probability
    times the aggressor fraction of the buffer.  Buffer clears on capable
    REFs are ignored, which over-estimates sampling -- the
    attacker-conservative direction.
    """
    acts: list[bool] = []  # True = aggressor ACT
    refs: list[int] = []  # stream position after which a REF fires

    def one_round() -> None:
        for w in range(hammer_windows + dummy_windows):
            acts.extend([w < hammer_windows] * acts_per_trefi)
            if not postpone_refs:
                refs.append(len(acts))
        if postpone_refs:
            refs.extend([len(acts)] * (hammer_windows + dummy_windows))

    one_round()
    warmup_refs = len(refs)
    one_round()
    expected = 0.0
    for position in refs[warmup_refs:]:
        buffer = acts[max(0, position - window):position]
        if buffer:
            expected += (sum(buffer) / len(buffer)) / capable_ref_period
    return expected


def schedule_score(
    samples_per_round: float,
    hammers_per_round: int,
    acts_per_round: int,
    hc_first: float,
) -> float:
    """Rank one schedule: success probability x ACT efficiency.

    A single sampled aggressor refreshes the victims and resets their
    accumulated disturbance, so the attack succeeds only over
    ``ceil(hc_first / hammers_per_round)`` consecutive sample-free rounds.
    """
    rounds_needed = max(1, math.ceil(hc_first / max(1, hammers_per_round)))
    survival = (1.0 - min(1.0, samples_per_round)) ** rounds_needed
    return survival * hammers_per_round / acts_per_round


def synthesize_schedule(
    hc_first: float,
    acts_per_trefi: int = MAX_ACTS_PER_TREFI,
    max_dummy_windows: int = 4,
) -> tuple[int, bool, float, float]:
    """Search (dummy_windows, postpone_refs) for the best evasion schedule.

    Returns ``(dummy_windows, postpone_refs, expected_samples, score)``.
    The search is deterministic; ties prefer fewer dummy windows and no
    postponement (the cheaper schedule).
    """
    best: tuple[float, int, bool, float] | None = None
    for dummy_windows in range(max_dummy_windows + 1):
        for postpone in (False, True):
            if postpone and dummy_windows + 1 > MAX_POSTPONED_REFS:
                continue
            samples = expected_aggressor_samples(
                1, dummy_windows, acts_per_trefi, postpone
            )
            hammers = acts_per_trefi // 2
            acts = (1 + dummy_windows) * acts_per_trefi
            score = schedule_score(samples, hammers, acts, hc_first)
            if best is None or score > best[0] + 1e-12:
                best = (score, dummy_windows, postpone, samples)
    assert best is not None
    score, dummy_windows, postpone, samples = best
    return dummy_windows, postpone, samples, score


# ----------------------------------------------------------------------
# Per-module attack portfolio
# ----------------------------------------------------------------------
def _victims_of(module: DramModule, activated: tuple[int, ...]) -> tuple[int, ...]:
    victims: set[int] = set()
    for row in activated:
        for distance in (1, 2):
            victims.update(module.geometry.neighbors(row, distance))
    return tuple(sorted(victims - set(activated)))


def _sandwich_center(module: DramModule, sentinel: int | None, fallback: int) -> int:
    """A victim row with a valid same-subarray double-sided sandwich."""
    center = sentinel if sentinel is not None else fallback
    if not module.geometry.same_subarray(center - 1, center + 1):
        center = fallback
    return center


def synthesize_attacks(
    module: DramModule,
    simra_rows: int = 16,
    acts_per_trefi: int = MAX_ACTS_PER_TREFI,
    bank: int = 0,
) -> tuple[AttackSpec, ...]:
    """The attack portfolio for one module configuration.

    Always contains the naive double-sided RowHammer baseline plus
    TRR-synchronized RowHammer and CoMRA schedules; SiMRA-capable modules
    additionally get a synchronized double-sided SiMRA-N attack.
    """
    model = module.model
    cal = model.calibration
    geometry = module.geometry
    base = geometry.rows_per_subarray + 32  # subarray 1 interior
    dummy = base + 64
    specs: list[AttackSpec] = []

    def spec_for(
        name: str,
        technique: str,
        aggressors: tuple[int, ...],
        activated: tuple[int, ...],
        pattern: DataPattern,
        hc_first: float,
        synchronized: bool,
        n_rows: int = 0,
    ) -> AttackSpec:
        if synchronized:
            dummy_windows, postpone, samples, score = synthesize_schedule(
                hc_first, acts_per_trefi
            )
        else:
            dummy_windows, postpone = 0, False
            samples = expected_aggressor_samples(1, 0, acts_per_trefi, False)
            score = schedule_score(
                samples, acts_per_trefi // 2, acts_per_trefi, hc_first
            )
        return AttackSpec(
            name=name,
            technique=technique,
            config_id=module.config_id,
            bank=bank,
            aggressors=aggressors,
            activated=activated,
            victims=_victims_of(module, activated),
            dummy=dummy,
            data_pattern=pattern,
            dummy_windows=dummy_windows,
            postpone_refs=postpone,
            acts_per_trefi=acts_per_trefi,
            n_rows=n_rows,
            expected_samples_per_round=samples,
            sync_score=score,
        )

    rh_center = _sandwich_center(
        module, model.sentinel_row(Mechanism.ROWHAMMER, bank), base + 1
    )
    rh_aggressors = (rh_center - 1, rh_center + 1)
    specs.append(
        spec_for(
            "naive-rowhammer", "rowhammer", rh_aggressors, rh_aggressors,
            DataPattern.CHECKER_AA, cal.rh_min, synchronized=False,
        )
    )
    specs.append(
        spec_for(
            "sync-rowhammer", "rowhammer", rh_aggressors, rh_aggressors,
            DataPattern.CHECKER_AA, cal.rh_min, synchronized=True,
        )
    )

    comra_center = _sandwich_center(
        module, model.sentinel_row(Mechanism.COMRA, bank), base + 1
    )
    comra_aggressors = (comra_center - 1, comra_center + 1)
    specs.append(
        spec_for(
            "sync-comra", "comra", comra_aggressors, comra_aggressors,
            DataPattern.CHECKER_AA, cal.comra_min, synchronized=True,
        )
    )

    if module.supports_simra:
        simra_sentinel = model.sentinel_row(Mechanism.SIMRA, bank)
        pair = None
        if simra_sentinel is not None:
            pair = simra_pair_sandwiching(module, simra_sentinel, simra_rows, bank)
        if pair is None:
            pair = simra_pair_for(
                module, (base // 32) * 32, simra_rows, "double-sided"
            )
        specs.append(
            spec_for(
                f"sync-simra{simra_rows}", "simra",
                (pair.row_a, pair.row_b), pair.group,
                DataPattern.ALL_ZEROS, float(cal.simra_min or 1.0),
                synchronized=True, n_rows=simra_rows,
            )
        )
    return tuple(specs)
