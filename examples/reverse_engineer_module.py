#!/usr/bin/env python3
"""Reverse engineering an unknown DIMM, exactly as §3-§5 do.

Discovers subarray boundaries (RowClone probing), the logical->physical
row mapping (hammer-and-locate), and the SiMRA row groups (WR override) --
without peeking at the simulated module's internals.

Run:  python examples/reverse_engineer_module.py
"""

from repro import make_module
from repro.reveng import (
    boundary_scan,
    discover_group,
    discover_supported_counts,
    infer_physical_neighbors,
)


def main() -> None:
    # a small chip keeps the exhaustive probes quick
    module = make_module("hynix-a-8gb", subarrays_per_bank=3,
                         rows_per_subarray=32)
    print(f"Probing {module} blind (no model internals used)...\n")

    print("1) Subarray boundaries from in-DRAM copy success:")
    boundaries = boundary_scan(module)
    print(f"   subarrays start at rows {boundaries} "
          f"(ground truth: every {module.geometry.rows_per_subarray} rows)")

    print("\n2) Row mapping from hammer-and-locate:")
    for logical in (4, 5, 6, 7):
        neighbors = infer_physical_neighbors(
            module, logical, list(range(max(0, logical - 6), logical + 7))
        )
        print(f"   logical row {logical}: physically adjacent to logical "
              f"{neighbors}")
    print("   (note the swapped pairs: SK Hynix's mirrored-pair mapping)")

    print("\n3) SiMRA groups from the WR-override probe:")
    for row_b in (33, 38, 46):
        group = discover_group(module, 32, row_b)
        print(f"   trigger (32, {row_b}) -> {len(group)} rows: {group}")
    counts = discover_supported_counts(module, 32)
    print(f"   supported simultaneous-activation counts: {counts}")


if __name__ == "__main__":
    main()
