#!/usr/bin/env python3
"""A vendor-level mini characterization campaign (the §4 pipeline).

Sweeps data pattern and temperature for one module per vendor and prints
the observation-style summary the paper's §4.3 reports.

Run:  python examples/characterize_vendor.py
"""

from collections import defaultdict

import numpy as np

from repro import ALL_PATTERNS, CharacterizationSession, ExperimentScale, make_module

CONFIGS = ("hynix-a-8gb", "micron-f-16gb", "samsung-b-16gb", "nanya-c-8gb")


def main() -> None:
    scale = ExperimentScale.small()
    for config_id in CONFIGS:
        module = make_module(config_id)
        session = CharacterizationSession(module, scale)
        victims = session.candidate_victims()[:6]
        print(f"\n=== {module} ===")

        # data-pattern sweep (Fig. 5)
        by_pattern = defaultdict(list)
        for victim in victims:
            for pattern in ALL_PATTERNS:
                m = session.measure_comra_ds(victim, pattern=pattern)
                if m.found:
                    by_pattern[pattern.value].append(m.hc_first)
        print("  CoMRA HC_first by aggressor pattern (mean):")
        for pattern, values in sorted(by_pattern.items()):
            marker = " <= worst-case" if np.mean(values) == min(
                np.mean(v) for v in by_pattern.values()
            ) else ""
            print(f"    {pattern}: {np.mean(values):>10.0f}{marker}")

        # temperature sweep (Fig. 6)
        print("  CoMRA mean HC_first by temperature:")
        for temperature in (50.0, 80.0):
            session.set_temperature(temperature)
            values = [
                m.hc_first for m in (session.measure_comra_ds(v) for v in victims)
                if m.found
            ]
            print(f"    {temperature:.0f} degC: {np.mean(values):>10.0f}")
        session.set_temperature(80.0)


if __name__ == "__main__":
    main()
