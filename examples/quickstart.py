#!/usr/bin/env python3
"""Quickstart: characterize one simulated module in a minute.

Builds the SK Hynix 8Gb A-die module (the paper's most-studied chip),
measures HC_first for double-sided RowHammer, CoMRA, and SiMRA on a few
victim rows, and prints the per-row comparison -- the core result of
PuDHammer in miniature.

Run:  python examples/quickstart.py
"""

from repro import CharacterizationSession, ExperimentScale, make_module


def main() -> None:
    module = make_module("hynix-a-8gb")
    print(f"Module under test: {module}")
    print(f"  SiMRA-capable: {module.supports_simra}")
    print(f"  mapping scheme: {module.calibration.mapping_scheme}")

    session = CharacterizationSession(module, ExperimentScale.small())
    print(f"  chip temperature held at {session.temperature_c:.0f} degC\n")

    victims = session.candidate_victims()[:5]
    print(f"{'victim':>8} {'region':>18} {'RowHammer':>10} {'CoMRA':>10} {'gain':>7}")
    for victim in victims:
        rowhammer = session.measure_rowhammer_ds(victim)
        comra = session.measure_comra_ds(victim)
        if not (rowhammer.found and comra.found):
            continue
        gain = rowhammer.hc_first / comra.hc_first
        print(
            f"{victim:>8} {rowhammer.region.value:>18} "
            f"{rowhammer.hc_first:>10.0f} {comra.hc_first:>10.0f} {gain:>6.2f}x"
        )

    print("\nSiMRA (simultaneous 4-row activation), double-sided groups:")
    best = None
    for pair in session.sample_simra_pairs(4)[:4]:
        for measurement in session.measure_simra_ds(pair, max_victims=1):
            if measurement.found:
                print(
                    f"  group {pair.group}: victim {measurement.victim} "
                    f"flips after {measurement.hc_first:.0f} SiMRA ops"
                )
                if best is None or measurement.hc_first < best:
                    best = measurement.hc_first
    if best is not None:
        print(
            f"\nWeakest tested victim needs only {best:.0f} SiMRA operations "
            f"(~{best * 55.5 / 1000:.1f} us of hammering)."
        )


if __name__ == "__main__":
    main()
