#!/usr/bin/env python3
"""§7 end to end: uncover the TRR mechanism, then bypass it with SiMRA.

1. U-TRR-style probing finds retention canaries and infers the sampling
   TRR's behavior.
2. A classic double-sided RowHammer runs under TRR: nearly no bitflips.
3. The two-ACT SiMRA trigger runs under the same TRR: bitflips galore.

Run:  python examples/trr_bypass_attack.py
"""

import numpy as np

from repro import DataPattern, ExperimentScale, make_module
from repro.bender.host import DramBenderHost
from repro.core import patterns
from repro.reveng import RetentionProfiler, TrrProber
from repro.trr import SamplingTrr


def count_victim_flips(module, host, victims, expected):
    flips = 0
    for victim in victims:
        logical = module.to_logical(victim)
        data = host.read_rows(0, [logical])[logical]
        flips += int((np.unpackbits(data) != np.unpackbits(expected)).sum())
    return flips


def main() -> None:
    module = make_module("hynix-a-8gb")
    module.attach_trr(SamplingTrr(seed=7))
    nbytes = module.geometry.row_bytes

    print("Step 1: probe the TRR mechanism (U-TRR methodology)")
    profiler = RetentionProfiler(module)
    canaries = profiler.find_canaries(range(3, 190, 5), limit=1)
    print(f"  retention canaries found: "
          f"{ {r: f'{t/1e9:.2f}s' for r, t in canaries.items()} }")
    findings = TrrProber(module).detect(canaries)
    print(f"  TRR detected: {findings.trr_detected}; "
          f"TRR-capable REF period <= {findings.capable_ref_period}; "
          f"sampler window ~ {findings.sampler_window_estimate}")

    hammers = 60_000

    print("\nStep 2: double-sided RowHammer under TRR")
    host = DramBenderHost(module)
    center = 96 + 33
    aggressors = [center - 1, center + 1]
    victims = [center]
    host.write_rows(0, {
        module.to_logical(a): DataPattern.CHECKER_AA.fill(nbytes)
        for a in aggressors
    })
    expected = DataPattern.CHECKER_55.fill(nbytes)
    host.write_rows(0, {module.to_logical(center): expected})
    rounds = hammers // 78
    program = patterns.n_sided_trr_pattern(module, aggressors, dummy=center + 60)
    for _ in range(rounds):
        host.run(program)
    rh_flips = count_victim_flips(module, host, victims, expected)
    print(f"  {hammers} hammers through the sampler -> {rh_flips} bitflips")

    print("\nStep 3: SiMRA under the same TRR (two ACTs per 16-row op)")
    host = DramBenderHost(module)
    pair = patterns.simra_pair_for(module, 96 + 32, 16)
    simra_victims = list(pair.sandwiched_victims())
    host.write_rows(0, {
        module.to_logical(r): DataPattern.ALL_ZEROS.fill(nbytes)
        for r in pair.group
    })
    expected = DataPattern.ALL_ONES.fill(nbytes)
    host.write_rows(0, {module.to_logical(v): expected for v in simra_victims})
    ops_per_round = 78
    program = patterns.simra_trr_pattern(module, pair, dummy=pair.row_a + 60)
    for _ in range(hammers // ops_per_round):
        host.run(program)
    simra_flips = count_victim_flips(module, host, simra_victims, expected)
    print(f"  {hammers} SiMRA ops through the sampler -> {simra_flips} bitflips")

    if rh_flips == 0:
        print(f"\nTRR stopped RowHammer cold; SiMRA induced {simra_flips} flips "
              "anyway (Obs. 25).")
    else:
        print(f"\nSiMRA/RowHammer flip ratio under TRR: "
              f"{simra_flips / rh_flips:.0f}x (paper: 11340x for SiMRA-32).")


if __name__ == "__main__":
    main()
