#!/usr/bin/env python3
"""§8.2 in miniature: what does stopping PuDHammer cost?

Runs the five-core memory-system simulation with the two adapted PRAC
variants over a PuD-intensity sweep and prints the Fig. 25 series.

Run:  python examples/prac_mitigation_cost.py
"""

from repro.memsys import Fig25Evaluation, average_overhead, overhead_by_period
from repro.mitigations import PracConfig


def main() -> None:
    evaluation = Fig25Evaluation(
        mix_count=3, periods_ns=(250.0, 1000.0, 4000.0, 16000.0)
    )
    outcomes = evaluation.evaluate()

    print(f"{'PuD period':>12} {'PRAC-PO-Naive':>15} {'PRAC-PO-WC':>13}")
    naive = overhead_by_period(outcomes, "PRAC-PO-Naive")
    weighted = overhead_by_period(outcomes, "PRAC-PO-WC")
    for period in sorted(naive):
        print(
            f"{period:>10.0f}ns {naive[period]:>13.1f}% {weighted[period]:>12.1f}%"
        )
    print(
        f"\naverage overhead: Naive "
        f"{average_overhead(outcomes, 'PRAC-PO-Naive'):.1f}%  vs  "
        f"WC {average_overhead(outcomes, 'PRAC-PO-WC'):.1f}% "
        "(paper: 48.26% average for WC)"
    )
    print(
        "\nWhy weighted counting helps: PRAC-PO-Naive must lower the row "
        "threshold to SiMRA's worst case "
        f"(RDT={PracConfig.po_naive().rdt}), so ordinary CPU traffic trips "
        "back-off constantly; weighted counting keeps the RowHammer "
        f"threshold (RDT={PracConfig.po_weighted().rdt}) and charges each "
        "SiMRA op 200 hammers instead."
    )


if __name__ == "__main__":
    main()
