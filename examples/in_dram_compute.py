#!/usr/bin/env python3
"""Processing-using-DRAM in action: copy, bitwise compute, and TRNG.

Demonstrates the PuD operations whose read-disturbance side effects the
paper characterizes: RowClone copies, multi-row copies, MAJ/AND/OR via
simultaneous activation with FracDRAM padding, and QUAC-TRNG entropy.

Run:  python examples/in_dram_compute.py
"""

import numpy as np

from repro import make_module
from repro.analysis import monobit_pvalue, runs_pvalue
from repro.pud import PudEngine, QuacTrng, reference_majority


def main() -> None:
    module = make_module("hynix-a-8gb")
    engine = PudEngine(module)
    rng = np.random.default_rng(42)
    columns = module.geometry.columns

    print("1) RowClone: in-DRAM copy without touching the channel")
    payload = rng.integers(0, 256, module.geometry.row_bytes, dtype=np.uint8)
    engine.write(10, payload)
    engine.copy(10, 20)
    assert np.array_equal(engine.read(20), payload)
    print(f"   copied {payload.nbytes} bytes row 10 -> row 20; "
          f"bank issued {module.banks[0].stats['comra_copies']} analog copy")

    print("2) Multi-row copy: 1 source -> 15 destinations in one operation")
    engine.write(32, payload)
    destinations = engine.multi_copy(32, 15)
    assert all(np.array_equal(engine.read(d), payload) for d in destinations)
    print(f"   destinations {destinations[0]}..{destinations[-1]} verified")

    print("3) Bulk bitwise AND / OR / MAJ3 (Ambit-style, FracDRAM-padded)")
    a = rng.integers(0, 2, columns, dtype=np.uint8)
    b = rng.integers(0, 2, columns, dtype=np.uint8)
    c = rng.integers(0, 2, columns, dtype=np.uint8)
    engine.write_bits(3, a)
    engine.write_bits(5, b)
    assert np.array_equal(np.unpackbits(engine.and_(3, 5)), a & b)
    engine.write_bits(3, a)
    engine.write_bits(5, b)
    assert np.array_equal(np.unpackbits(engine.or_(3, 5)), a | b)
    engine.write_bits(3, a)
    engine.write_bits(5, b)
    engine.write_bits(7, c)
    maj = np.unpackbits(engine.majority([3, 5, 7]))
    assert np.array_equal(maj, reference_majority([a, b, c]))
    print(f"   {columns}-bit AND, OR and MAJ3 all verified against software")

    print("4) QUAC-TRNG: harvesting charge-sharing ties")
    trng = QuacTrng(module, block_base=64)
    sample = trng.generate(2048)
    bits = np.unpackbits(np.frombuffer(sample, np.uint8))
    print(f"   2048 bytes generated; monobit p={monobit_pvalue(bits):.3f}, "
          f"runs p={runs_pvalue(bits):.3f} (>= 0.01 passes)")

    ops = module.banks[0].stats["simra_ops"]
    print(f"\nAll of the above performed {ops} simultaneous multi-row "
          "activations -- each one a PuDHammer hammering event.")


if __name__ == "__main__":
    main()
