"""Fig. 9: CoMRA PRE->ACT latency sweep."""

from conftest import run_and_print


def test_fig09(benchmark, scale):
    result = run_and_print(benchmark, "fig09", scale)
    # paper Obs. 8: HC_first rises 3.10x/1.18x/1.17x/3.01x at 12 ns
    assert 2.0 <= result.checks["hc_increase_7p5_to_12_SK Hynix"] <= 4.5
    assert 1.05 <= result.checks["hc_increase_7p5_to_12_Micron"] <= 1.5
    assert 1.02 <= result.checks["hc_increase_7p5_to_12_Samsung"] <= 1.5
    assert 2.0 <= result.checks["hc_increase_7p5_to_12_Nanya"] <= 4.5
