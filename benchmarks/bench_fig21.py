"""Fig. 21: combined RowHammer + CoMRA."""

from conftest import run_and_print


def test_fig21(benchmark, scale):
    result = run_and_print(benchmark, "fig21", scale)
    # paper Obs. 22: 1.34x at 90% pre-hammer, 1.02x at 10%, most rows improve
    assert 1.15 <= result.checks["mean_reduction_at_90pct"] <= 1.70
    assert 0.99 <= result.checks["mean_reduction_at_10pct"] <= 1.15
    assert result.checks["fraction_improved_at_90pct"] >= 0.85
