"""Fig. 23: combined RowHammer + CoMRA + SiMRA."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig23(benchmark, scale):
    result = run_and_print(benchmark, "fig23", scale)
    # paper Obs. 24: the most effective combination, ~1.66x
    assert 1.35 <= result.checks["mean_reduction_at_90pct"] <= 2.2
    single = run_experiment("fig21", scale)
    assert (
        result.checks["mean_reduction_at_90pct"]
        >= single.checks["mean_reduction_at_90pct"]
    )
