"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one of the paper's tables/figures,
prints the series the paper reports, and asserts the *shape* of the result
(who wins, rough factors, crossovers) against the paper's numbers.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (quick smoke), ``default``, or ``paper`` (hours).

Results are served through the campaign artifact store (``REPRO_CACHE_DIR``
or ``~/.cache/repro``): an experiment already computed by a previous bench
invocation -- or by ``python -m repro campaign`` -- is fetched instead of
recomputed, so the suite no longer duplicates work across runs.  Set
``REPRO_BENCH_FRESH=1`` to force recomputation.
"""

import hashlib
import json
import os
import time

import pytest

from repro import ExperimentScale
from repro.campaign import ArtifactStore
from repro.experiments import run_experiment


def bench_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    factory = {
        "small": ExperimentScale.small,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }.get(name)
    if factory is None:
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}")
    return factory()


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def store():
    return ArtifactStore()


def _bench_key(store, experiment_id, scale, kwargs):
    # non-default kwargs produce a different result, so they get their own
    # artifact, labelled as a shard of the experiment
    shard = None
    if kwargs:
        blob = json.dumps(kwargs, sort_keys=True, default=repr)
        shard = "kwargs-" + hashlib.sha256(blob.encode()).hexdigest()[:12]
    return store.key(experiment_id, scale, shard)


def run_and_print(benchmark, experiment_id, scale, **kwargs):
    """Run one experiment under pytest-benchmark and print its series.

    Serves from the campaign artifact store on a hit (the benchmark then
    times the fetch); on a miss it runs the experiment and persists the
    result for every later bench/campaign/report invocation.
    """
    store = ArtifactStore()
    key = _bench_key(store, experiment_id, scale, kwargs)
    fresh = os.environ.get("REPRO_BENCH_FRESH", "") not in ("", "0")

    def compute_or_fetch():
        if not fresh:
            cached = store.get(key)
            if cached is not None:
                return cached
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale, **kwargs)
        store.put(key, result, time.perf_counter() - started, worker="bench")
        return result

    result = benchmark.pedantic(
        compute_or_fetch,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    result.print()
    return result
