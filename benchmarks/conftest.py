"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one of the paper's tables/figures,
prints the series the paper reports, and asserts the *shape* of the result
(who wins, rough factors, crossovers) against the paper's numbers.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (quick smoke), ``default``, or ``paper`` (hours).
"""

import os

import pytest

from repro import ExperimentScale
from repro.experiments import run_experiment


def bench_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    factory = {
        "small": ExperimentScale.small,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }.get(name)
    if factory is None:
        raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}")
    return factory()


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_and_print(benchmark, experiment_id, scale, **kwargs):
    """Run one experiment under pytest-benchmark and print its series."""
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, scale),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    result.print()
    return result
