"""Fig. 7: single-sided CoMRA vs RowHammer vs far double-sided RowHammer."""

from conftest import run_and_print


def test_fig07(benchmark, scale):
    result = run_and_print(benchmark, "fig07", scale)
    # paper Obs. 5: single-sided CoMRA beats single-sided RowHammer
    # (1.42x minima in SK Hynix) and tracks far double-sided RowHammer
    assert result.checks["ss_comra_vs_ss_rh_SK Hynix"] > 1.1
    assert 0.85 <= result.checks["ss_comra_vs_far_ds_SK Hynix"] <= 1.2
