"""Ablation: the §8.1 countermeasures' costs and guarantees.

Not a paper figure; DESIGN.md calls out the three sketched countermeasures
and this bench quantifies the design points the paper argues qualitatively.
"""

import pytest

from repro.mitigations import (
    ClusteredActivationDecoder,
    ComputeRegionPolicy,
    PracConfig,
    WeightedContributionPolicy,
)


def test_compute_region_refresh_overhead(benchmark):
    policy = benchmark(ComputeRegionPolicy)
    overhead = policy.refresh_overhead_fraction()
    print(f"\ncompute-region refresh overhead: {overhead:.1%}")
    assert overhead < 0.6
    assert policy.storage_region_rdt_scale() >= 0.95


def test_weighted_contribution_covers_measured_worst_cases(benchmark):
    policy = benchmark(WeightedContributionPolicy)
    observed = {"rowhammer": 4123, "comra": 447, "simra": 26}
    assert policy.is_secure_against(observed)
    equivalent = policy.equivalent_hammers(acts=0, comra_ops=0, simra_ops=20)
    print(f"\n20 SiMRA ops count as {equivalent} hammers")
    assert equivalent >= 4000


def test_clustered_decoder_eliminates_double_sided(benchmark):
    decoder = benchmark(ClusteredActivationDecoder)
    assert decoder.eliminates_double_sided_simra()


def test_prac_ao_latency_is_prohibitive(benchmark):
    config = benchmark(PracConfig.ao_weighted)
    latency = config.update_latency_ns(32)
    print(f"\nPRAC-AO SiMRA-32 counter update: {latency:.0f} ns")
    assert latency > 1_000.0  # ~1.5 us, §8.2
