"""Table 2: per-configuration minimum/average HC_first."""

from conftest import run_and_print


def test_table2(benchmark, scale):
    result = run_and_print(benchmark, "table2", scale)
    # the paper's minima are reproduced exactly up to bisection precision
    # (sentinel rows); averages depend on the sampled row subset
    for key, value in result.checks.items():
        if key.endswith("min_ratio_hynix-a-8gb") or "min_ratio" in key:
            assert 0.5 <= value <= 2.0, f"{key} = {value}"
    assert 0.95 <= result.checks["rh_min_ratio_hynix-a-8gb"] <= 1.05
    assert 0.95 <= result.checks["comra_min_ratio_hynix-a-8gb"] <= 1.05
    assert 0.95 <= result.checks["simra_min_ratio_hynix-a-8gb"] <= 1.4
