"""Fig. 22: combined RowHammer + SiMRA."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig22(benchmark, scale):
    result = run_and_print(benchmark, "fig22", scale)
    # paper Obs. 23: ~1.22x at 90%, less effective than RH+CoMRA
    assert 1.05 <= result.checks["mean_reduction_at_90pct"] <= 1.55
    comra = run_experiment("fig21", scale)
    assert (
        result.checks["mean_reduction_at_90pct"]
        <= comra.checks["mean_reduction_at_90pct"] + 0.10
    )
