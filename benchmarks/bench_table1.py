"""Table 1: tested chip population."""

from conftest import run_and_print


def test_table1(benchmark, scale):
    result = run_and_print(benchmark, "table1", scale)
    assert result.checks["total_chips"] == 316
    assert result.checks["total_modules"] == 40
