"""Fig. 14: SiMRA data-pattern sweep."""

from conftest import run_and_print


def test_fig14(benchmark, scale):
    result = run_and_print(benchmark, "fig14", scale)
    # paper Obs. 13: the wrong victim polarity raises average HC_first by
    # up to 57.8x; every N shows a large penalty
    for count in (2, 4, 8, 16):
        key = f"victim00_penalty_n{count}"
        if key in result.checks:
            assert result.checks[key] > 4.0
