"""Fig. 16: single-sided SiMRA vs single-sided RowHammer."""

from conftest import run_and_print


def test_fig16(benchmark, scale):
    result = run_and_print(benchmark, "fig16", scale)
    # paper Obs. 16-17: more rows -> lower HC_first; SiMRA-32 beats
    # single-sided RowHammer
    assert result.checks["ss_simra_32_vs_2_mean"] > 1.15
    assert result.checks["mean_decreases_with_n"] == 1.0
    if "ss_simra32_vs_ss_rh_min" in result.checks:
        assert result.checks["ss_simra32_vs_ss_rh_min"] > 1.0
