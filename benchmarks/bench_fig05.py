"""Fig. 5: CoMRA data-pattern sweep."""

from conftest import run_and_print


def test_fig05(benchmark, scale):
    result = run_and_print(benchmark, "fig05", scale)
    # paper Obs. 3: checkerboard generally the most effective pattern
    checker_best = [
        v for k, v in result.checks.items() if k.startswith("best_pattern_is_checker")
    ]
    assert checker_best and sum(checker_best) >= len(checker_best) - 1
