#!/usr/bin/env python
"""Hot-path microbenchmarks for the compiled command-stream engine.

Three cells, each timing the same workload on the fast host (compiled
streams + chunked replay) and the reference host (per-instruction
interpretation):

* ``hammer_loop``   -- TRR-attached double-sided RowHammer loop, the
  workload the chunked ``on_act_stream`` path was built for.  The
  speedup here carries a hard >=10x floor (the PR's acceptance bar).
* ``hcfirst_search`` -- five-repeat HC_first measurement, memoized +
  bracket-warm-started vs five independent cold searches.
* ``gauntlet_cell`` -- one attack-gauntlet cell (synchronized attack
  under sampling TRR) with ``DramBenderHost.default_compile_streams``
  toggled, i.e. the end-to-end attack_surface hot path.
* ``hcfirst_batch`` / ``comra_sweep`` -- the batched multi-victim probe
  engine (``measure_many_*``) against the scalar per-victim session
  loop, on a whole-bank RowHammer sweep and a fig09-style CoMRA
  condition sweep respectively.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke \
        --out benchmarks/BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke \
        --check benchmarks/BENCH_hotpath.json

``--check`` exits non-zero when any cell's speedup degraded by more
than 2x against the committed baseline (speedups, not wall times, so
the check is stable across runner hardware).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.attack.gauntlet import run_cell  # noqa: E402
from repro.attack.synthesis import synthesize_attacks  # noqa: E402
from repro.bender.host import DramBenderHost  # noqa: E402
from repro.core import patterns  # noqa: E402
from repro.core.hcfirst import (  # noqa: E402
    ProbeSetup,
    find_hc_first,
    find_hc_first_repeated,
    standard_row_data,
)
from repro.disturbance import Mechanism  # noqa: E402
from repro.dram import make_module  # noqa: E402
from repro.memsys import (  # noqa: E402
    MemSysConfig,
    MemorySystem,
    ScanLoopMemorySystem,
)
from repro.obs import Obs  # noqa: E402
from repro.trr import SamplingTrr  # noqa: E402
from repro.workloads import PudWorkloadConfig, build_mixes  # noqa: E402

CONFIG = "hynix-a-8gb"
VICTIM = 2 * 96 + 40

#: acceptance floor on the TRR-attached hammer-loop speedup
HAMMER_LOOP_FLOOR = 10.0

#: acceptance floor on the batched multi-victim sweep.  The original goal
#: was 5x, but that is unreachable without pessimizing the scalar
#: reference; the damage-ledger rework and the compiled flat-probe
#: replay kernel (DESIGN.md §12) land the honest measured ratio at
#: ~2.6-2.8x at default scale.  The fast-side floor is per-unit
#: translation plus the flip-realization epilogue, which only
#: cross-unit vectorization of heterogeneous programs could amortize.
#: The floor leaves headroom for slower CI hardware; DESIGN.md §11-12
#: have the stage-by-stage cost breakdown (also emitted per run as the
#: cell's ``stages_s`` field).
HCFIRST_BATCH_FLOOR = 1.8

#: --check fails when a cell's speedup falls below baseline/REGRESSION_FACTOR
REGRESSION_FACTOR = 2.0


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_hammer_loop(smoke: bool, repeats: int) -> dict:
    count = 20_000 if smoke else 120_000

    def run(fast: bool) -> None:
        module = make_module(CONFIG)
        module.attach_trr(SamplingTrr(seed=0))
        host = DramBenderHost(module, scale_loops=fast, compile_streams=fast)
        host.run(patterns.double_sided_rowhammer(module, VICTIM, count))

    fast_s = _timeit(lambda: run(True), repeats)
    ref_s = _timeit(lambda: run(False), max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"count": count}}


def bench_hcfirst_search(smoke: bool, repeats: int) -> dict:
    n_repeats = 3 if smoke else 5

    def make_setup() -> ProbeSetup:
        module = make_module(CONFIG)
        pattern = module.model.worst_case_pattern(0, VICTIM, Mechanism.ROWHAMMER)
        return ProbeSetup(
            module=module,
            program_factory=lambda n: patterns.double_sided_rowhammer(
                module, VICTIM, n
            ),
            row_data=standard_row_data(
                module, [VICTIM - 1, VICTIM + 1], [VICTIM], pattern
            ),
            victims=[VICTIM],
        )

    def naive() -> None:
        setup = make_setup()
        for _ in range(n_repeats):
            find_hc_first(setup)

    def memoized() -> None:
        find_hc_first_repeated(make_setup(), repeats=n_repeats)

    fast_s = _timeit(memoized, repeats)
    ref_s = _timeit(naive, max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"repeats": n_repeats}}


def bench_gauntlet_cell(smoke: bool, repeats: int) -> dict:
    module = make_module(CONFIG)
    specs = {spec.name: spec for spec in synthesize_attacks(module)}
    spec = specs.get("sync-comra") or next(iter(specs.values()))
    act_budget = spec.acts_per_round * (4 if smoke else 16)

    def run(fast: bool) -> None:
        previous = DramBenderHost.default_compile_streams
        DramBenderHost.default_compile_streams = fast
        try:
            run_cell(CONFIG, spec, "sampling-trr", act_budget,
                     stop_after_first_flip=False)
        finally:
            DramBenderHost.default_compile_streams = previous

    fast_s = _timeit(lambda: run(True), repeats)
    ref_s = _timeit(lambda: run(False), max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"attack": spec.name, "act_budget": act_budget}}


def bench_population_scan(smoke: bool, repeats: int) -> dict:
    """Bulk population tables + array oracles vs per-row scalar sampling.

    The reference side replays the pre-table behavior: sample every row's
    profile with the scalar ``_sample_profile`` (seeding the profile cache
    so the scalar oracles don't fall through to the table path), then run
    the scalar HC_first / WCDP oracles row by row.
    """
    n_subarrays = 2 if smoke else 6

    def subarray_rows(module):
        geom = module.geometry
        return [
            row
            for sub in range(min(n_subarrays, geom.subarrays_per_bank))
            for row in geom.subarray_rows(sub)
        ]

    def fast() -> None:
        module = make_module(CONFIG)
        model = module.model
        rows = subarray_rows(module)
        for sub in range(min(n_subarrays, module.geometry.subarrays_per_bank)):
            model.population(0, sub)
        model.reference_hcfirst_array(0, rows, Mechanism.ROWHAMMER)
        model.reference_hcfirst_array(0, rows, Mechanism.COMRA)
        model.worst_case_patterns(0, rows, Mechanism.ROWHAMMER)

    def ref() -> None:
        module = make_module(CONFIG)
        model = module.model
        rows = subarray_rows(module)
        for row in rows:
            model._profiles[(0, row)] = model._sample_profile(0, row)
        for row in rows:
            model.reference_hcfirst(0, row, Mechanism.ROWHAMMER)
            model.reference_hcfirst(0, row, Mechanism.COMRA)
            model.worst_case_pattern(0, row, Mechanism.ROWHAMMER)

    fast_s = _timeit(fast, repeats)
    ref_s = _timeit(ref, max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"subarrays": n_subarrays}}


def bench_fig25_mix_sweep(smoke: bool, repeats: int) -> dict:
    """Event-queue memory-system engine vs the frozen scan-loop reference.

    A scaled-down Fig. 25 sweep: workload mixes x PuD periods under
    weighted-PRAC, identical ``SimResult`` streams on both engines.
    """
    from repro.mitigations import PracConfig

    mix_count = 2 if smoke else 3
    periods = (1000.0,) if smoke else (250.0, 1000.0, 4000.0)
    horizon = 60_000.0 if smoke else 120_000.0
    mixes = build_mixes(mix_count)
    prac = PracConfig.po_weighted()

    def sweep(engine) -> None:
        for mix_id, mix in enumerate(mixes):
            for period in periods:
                engine(
                    mix,
                    pud=PudWorkloadConfig(period_ns=period),
                    prac=prac,
                    config=MemSysConfig(horizon_ns=horizon),
                    seed=mix_id,
                ).run()

    fast_s = _timeit(lambda: sweep(MemorySystem), repeats)
    ref_s = _timeit(lambda: sweep(ScanLoopMemorySystem), max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"mixes": mix_count, "periods": list(periods),
                       "horizon_ns": horizon}}


def bench_pud_reliability(smoke: bool, repeats: int) -> dict:
    """One reliability workload under the oracle, fast host vs reference.

    ``execute_workload`` lowers the memcpy sweep to pure-loop programs, so
    the compiled command-stream engine carries the sustained portion; the
    reference side interprets every command.
    """
    from repro.reliability import build_defense, build_workloads, execute_workload

    reps = 6_000 if smoke else 36_000

    def run(fast: bool) -> None:
        module = make_module(CONFIG)
        workload = build_workloads(module, reps, include=["memcpy-sweep"])[0]
        execute_workload(module, workload, build_defense("none"), fast=fast)

    fast_s = _timeit(lambda: run(True), repeats)
    ref_s = _timeit(lambda: run(False), max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"reps": reps, "workload": "memcpy-sweep"}}


def bench_hcfirst_batch(smoke: bool, repeats: int) -> dict:
    """Batched multi-victim HC_first sweep vs the scalar per-victim loop.

    ``measure_many_rowhammer_ds`` over every candidate victim against the
    same sweep with ``batch_probes=False`` (the exact scalar path, not a
    pessimized stand-in).  The scalar side is dominated by per-ACT
    interpretation, which the compiled flat-probe kernel replaces with a
    straight-line float program over ledger columns; the residue bounding
    the ratio is per-unit translation plus the flip-realization epilogue.
    The cell reports the fast side's per-stage split (``stages_s``, from
    ``session.probe_stage_s``) -- see DESIGN.md §11-12 for the measured
    breakdown.
    """
    from repro.core import CharacterizationSession, ExperimentScale

    # always default scale: the acceptance bar is "at default scale",
    # the whole cell is ~130 ms, and small-scale victim counts leave
    # too little batch parallelism to measure anything meaningful
    scale = ExperimentScale.default()

    def run(batched: bool) -> tuple[dict, dict]:
        # the fast side is timed WITH a live obs registry attached -- the
        # acceptance bar is that enabled metrics cost <=2% on this cell
        obs = Obs() if batched else None
        session = CharacterizationSession(make_module(CONFIG), scale, obs=obs)
        session.batch_probes = batched
        if batched:
            session.probe_stage_s = {}
        victims = session.candidate_victims()
        if batched:
            session.measure_many_rowhammer_ds(victims)
            return session.probe_stage_s, obs.snapshot()
        for v in victims:
            session.measure_rowhammer_ds(v)
        return {}, {}

    # hand-rolled best-of so the reported stage split and obs snapshot
    # come from the same iteration as the reported wall time
    fast_s = float("inf")
    stages: dict = {}
    snapshot: dict = {}
    for _ in range(repeats):
        start = time.perf_counter()
        run_stages, run_obs = run(True)
        elapsed = time.perf_counter() - start
        if elapsed < fast_s:
            fast_s = elapsed
            stages = run_stages
            snapshot = run_obs
    ref_s = _timeit(lambda: run(False), max(1, repeats // 2))
    engine_s = sum(stages.values())
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "stages_s": {
                **{k: round(v, 6) for k, v in sorted(stages.items())},
                "other": round(fast_s - engine_s, 6),
            },
            "obs": snapshot,
            "params": {"scale": "default"}}


def bench_comra_sweep(smoke: bool, repeats: int) -> dict:
    """A fig09-style CoMRA condition sweep, batched vs scalar.

    Each PRE-to-ACT delay is one ``measure_many_comra_ds`` call on the
    fast side and a per-victim ``measure_comra_ds`` loop on the reference
    side -- the experiment-loop shape comra.py runs after the migration.
    """
    from repro.core import CharacterizationSession, ExperimentScale

    # always default scale (matching hcfirst_batch): small-scale victim
    # counts leave too little batch parallelism for the cell to measure
    # the engine rather than fixed session overhead.  Smoke mode trims
    # the delay grid instead, which scales wall time without changing
    # the per-victim work being compared.
    scale = ExperimentScale.default()
    delays = (5.0, 50.0) if smoke else (5.0, 15.0, 50.0)

    def run(batched: bool):
        session = CharacterizationSession(make_module(CONFIG), scale)
        session.batch_probes = batched
        victims = session.candidate_victims()
        out = []
        for delay in delays:
            if batched:
                out.extend(
                    session.measure_many_comra_ds(victims, pre_to_act_ns=delay)
                )
            else:
                out.extend(
                    session.measure_comra_ds(v, pre_to_act_ns=delay)
                    for v in victims
                )
        return out

    fast_s = _timeit(lambda: run(True), repeats)
    ref_s = _timeit(lambda: run(False), max(1, repeats // 2))
    return {"fast_s": fast_s, "ref_s": ref_s, "speedup": ref_s / fast_s,
            "params": {"scale": "default", "delays_ns": list(delays)}}


BENCHES = {
    "hammer_loop": bench_hammer_loop,
    "hcfirst_search": bench_hcfirst_search,
    "gauntlet_cell": bench_gauntlet_cell,
    "population_scan": bench_population_scan,
    "fig25_mix_sweep": bench_fig25_mix_sweep,
    "pud_reliability": bench_pud_reliability,
    "hcfirst_batch": bench_hcfirst_batch,
    "comra_sweep": bench_comra_sweep,
}


def check_against_baseline(results: dict, baseline_path: Path) -> list[str]:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, cell in results["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        floor = base["speedup"] / REGRESSION_FACTOR
        if cell["speedup"] < floor:
            failures.append(
                f"{name}: speedup {cell['speedup']:.1f}x is below "
                f"{floor:.1f}x ({REGRESSION_FACTOR}x regression vs "
                f"baseline {base['speedup']:.1f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload sizes for CI")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats per cell (best-of)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write results JSON here")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to compare speedups against")
    parser.add_argument("--only", choices=sorted(BENCHES), action="append",
                        help="run only the named cell(s)")
    args = parser.parse_args(argv)

    names = args.only or list(BENCHES)
    results = {"config": CONFIG, "smoke": bool(args.smoke), "benchmarks": {}}
    failures = []
    for name in names:
        cell = BENCHES[name](args.smoke, args.repeats)
        results["benchmarks"][name] = cell
        print(f"{name:16s} fast {cell['fast_s']*1e3:9.1f} ms   "
              f"ref {cell['ref_s']*1e3:9.1f} ms   "
              f"speedup {cell['speedup']:7.1f}x")
        if cell.get("stages_s"):
            split = "  ".join(
                f"{key} {value*1e3:.1f}ms"
                for key, value in cell["stages_s"].items()
            )
            print(f"{'':16s} stages: {split}")
        probe_paths = cell.get("obs", {}).get("counters", {}).get("probe.probes")
        if probe_paths:
            split = "  ".join(
                f"{labels} {count}" for labels, count in probe_paths.items()
            )
            print(f"{'':16s} probes: {split}")
        if name == "hammer_loop" and cell["speedup"] < HAMMER_LOOP_FLOOR:
            failures.append(
                f"hammer_loop: speedup {cell['speedup']:.1f}x is below the "
                f"{HAMMER_LOOP_FLOOR:.0f}x acceptance floor"
            )
        if name == "hcfirst_batch" and cell["speedup"] < HCFIRST_BATCH_FLOOR:
            failures.append(
                f"hcfirst_batch: speedup {cell['speedup']:.1f}x is below the "
                f"{HCFIRST_BATCH_FLOOR:.1f}x acceptance floor"
            )

    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.check is not None:
        failures.extend(check_against_baseline(results, args.check))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
