"""Ablation benches for DESIGN.md's load-bearing design choices.

These are not paper figures; they quantify the simulator decisions that
make the reproduction tractable and demonstrate they do not change the
science:

* loop scaling -- the host's warm-up + scaled-damage fast path must agree
  exactly with unrolled execution, at orders-of-magnitude lower cost;
* synergy window -- double-sided detection must classify the paper's
  canonical patterns correctly;
* sentinel rows -- population minima must be pinned without disturbing the
  rest of the distribution.
"""

import time

import numpy as np
import pytest

from repro import ExperimentScale, Mechanism, make_module
from repro.bender.host import DramBenderHost
from repro.core import CharacterizationSession, patterns


def _damage_after(scaled: bool, count: int) -> tuple[float, float]:
    module = make_module("hynix-a-8gb")
    victim = 2 * 96 + 40
    host = DramBenderHost(module, scale_loops=scaled)
    program = patterns.double_sided_rowhammer(module, victim, count)
    start = time.perf_counter()
    host.run(program)
    elapsed = time.perf_counter() - start
    return (
        sum(module.model.damage_fraction(0, victim).values()),
        elapsed,
    )


def test_loop_scaling_exactness_and_speedup(benchmark):
    exact, exact_time = _damage_after(scaled=False, count=3000)
    scaled, scaled_time = benchmark.pedantic(
        _damage_after, args=(True, 3000), rounds=1, iterations=1
    )
    print(f"\nexact {exact_time*1e3:.1f} ms vs scaled {scaled_time*1e3:.2f} ms "
          f"({exact_time / max(scaled_time, 1e-9):.0f}x)")
    assert scaled == pytest.approx(exact, rel=1e-9)
    assert scaled_time < exact_time


def test_sentinels_pin_minima_without_shifting_average(benchmark):
    def measure():
        module = make_module("hynix-a-8gb")
        session = CharacterizationSession(module, ExperimentScale.small())
        values = [
            m.hc_first for m in (
                session.measure_rowhammer_ds(v)
                for v in session.candidate_victims()
            ) if m.found
        ]
        return values

    values = benchmark.pedantic(measure, rounds=1, iterations=1)
    calibration = make_module("hynix-a-8gb").calibration
    assert min(values) == pytest.approx(calibration.rh_min, rel=0.05)
    # sentinels are 2 of ~25 rows: the average stays in the population band
    assert np.mean(values) == pytest.approx(calibration.rh_avg, rel=0.6)


def test_synergy_classifies_canonical_patterns(benchmark):
    def run():
        module = make_module("hynix-a-8gb")
        victim = 2 * 96 + 40
        host = DramBenderHost(module)
        # double-sided: alternating neighbors -> full weight
        host.run(patterns.double_sided_rowhammer(module, victim, 500))
        ds = sum(module.model.damage_fraction(0, victim).values())
        module2 = make_module("hynix-a-8gb")
        host2 = DramBenderHost(module2)
        # single-sided at same per-victim act count -> penalized
        host2.run(patterns.single_sided_rowhammer(module2, victim - 1, 1000))
        ss = sum(module2.model.damage_fraction(0, victim).values())
        return ds, ss

    ds, ss = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nDS damage {ds:.4f} vs SS damage {ss:.4f}")
    assert ds > ss * 1.2
