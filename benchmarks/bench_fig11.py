"""Fig. 11: CoMRA spatial variation."""

from conftest import run_and_print


def test_fig11(benchmark, scale):
    result = run_and_print(benchmark, "fig11", scale)
    # paper Obs. 10: spans up to 1.40x/2.25x/2.57x/1.04x.  Nanya's profile
    # is nearly flat, so at sampled row counts its measured span is noise;
    # the discriminating claims are the bands of the structured vendors
    # and Nanya sitting at the bottom of the ordering.
    assert 1.1 <= result.checks["spatial_span_SK Hynix"] <= 1.9
    assert 1.4 <= result.checks["spatial_span_Micron"] <= 3.2
    assert 1.5 <= result.checks["spatial_span_Samsung"] <= 4.3
    assert (
        result.checks["spatial_span_Nanya"]
        < result.checks["spatial_span_Micron"]
    )
    assert (
        result.checks["spatial_span_Nanya"]
        < result.checks["spatial_span_Samsung"]
    )
