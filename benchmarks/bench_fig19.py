"""Fig. 19: SiMRA spatial variation."""

from conftest import run_and_print


def test_fig19(benchmark, scale):
    result = run_and_print(benchmark, "fig19", scale)
    # paper Obs. 21: region effects exist and differ per N
    spans = [v for k, v in result.checks.items() if k.startswith("spatial_span")]
    assert spans and max(spans) > 1.1
