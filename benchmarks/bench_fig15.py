"""Fig. 15: SiMRA temperature sweep."""

from conftest import run_and_print


def test_fig15(benchmark, scale):
    result = run_and_print(benchmark, "fig15", scale)
    # paper Obs. 15: ~3.0-3.3x from 50 to 80 degC, for every N
    for count in (2, 4, 8, 16):
        key = f"hc_ratio_50C_over_80C_n{count}"
        if key in result.checks:
            assert 2.0 <= result.checks[key] <= 4.5
