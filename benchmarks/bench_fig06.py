"""Fig. 6: CoMRA temperature sweep."""

from conftest import run_and_print


def test_fig06(benchmark, scale):
    result = run_and_print(benchmark, "fig06", scale)
    # paper Obs. 4: hotter is worse for SK Hynix/Samsung/Nanya...
    assert result.checks["hc_ratio_50C_over_80C_SK Hynix"] > 1.2
    assert result.checks["hc_ratio_50C_over_80C_Samsung"] > 1.1
    assert result.checks["hc_ratio_50C_over_80C_Nanya"] > 1.0
    # ...but Micron inverts (HC_first rises ~1.14x with temperature)
    assert result.checks["hc_ratio_50C_over_80C_Micron"] < 1.0
