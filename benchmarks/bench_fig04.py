"""Fig. 4: double-sided CoMRA vs RowHammer."""

from conftest import run_and_print


def test_fig04(benchmark, scale):
    result = run_and_print(benchmark, "fig04", scale)
    # paper: 13.98x / 1.18x / 3.28x / 1.58x minima reductions
    assert 10.0 <= result.checks["min_reduction_SK Hynix"] <= 18.0
    assert 1.0 <= result.checks["min_reduction_Micron"] <= 2.5
    assert 2.3 <= result.checks["min_reduction_Samsung"] <= 4.5
    assert 1.1 <= result.checks["min_reduction_Nanya"] <= 2.2
    # paper: 99% of rows improve
    assert result.checks["fraction_improved"] >= 0.85
