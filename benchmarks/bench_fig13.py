"""Fig. 13: double-sided SiMRA vs RowHammer."""

from conftest import run_and_print


def test_fig13(benchmark, scale):
    result = run_and_print(benchmark, "fig13", scale)
    # paper Obs. 12: HC_first down to 26; enormous reduction vs RowHammer
    assert 22 <= result.checks["lowest_simra_hc"] <= 40
    assert result.checks["min_reduction_vs_rowhammer"] > 100
    for count in (2, 4, 8, 16):
        assert result.checks[f"fraction_improved_n{count}"] >= 0.8
