"""Fig. 24: TRR bypass."""

from conftest import run_and_print


def test_fig24(benchmark, scale):
    result = run_and_print(benchmark, "fig24", scale)
    # paper Obs. 25-26: TRR nearly eliminates RowHammer flips (99.89%)
    # but barely dents SiMRA (15.62%); SiMRA >> RowHammer under TRR
    assert result.checks["rowhammer_trr_reduction_pct"] >= 95.0
    assert result.checks["simra_trr_reduction_pct"] <= 50.0
    assert result.checks["simra_vs_rowhammer_with_trr"] > 50.0
