"""Fig. 25: PRAC performance overhead."""

from conftest import run_and_print


def test_fig25(benchmark, scale):
    result = run_and_print(benchmark, "fig25", scale)
    wc = result.checks["avg_overhead_PRAC-PO-WC"]
    naive = result.checks["avg_overhead_PRAC-PO-Naive"]
    # paper: WC averages 48.26% overhead; Naive is strictly worse on
    # average (at full saturation the two tie within noise)
    assert 25.0 <= wc <= 70.0
    assert naive > wc
    assert result.checks["wc_beats_naive_fraction"] >= 0.6
    # paper: max overhead up to 98.83% at the highest PuD intensity
    assert result.checks["max_overhead_PRAC-PO-WC"] >= 50.0
