"""Fig. 10: copy-direction reversal."""

from conftest import run_and_print


def test_fig10(benchmark, scale):
    result = run_and_print(benchmark, "fig10", scale)
    # paper Obs. 9: typical change ~2.79% (double) / ~0.40% (single),
    # with a rare large-asymmetry tail (up to 20.1x)
    assert result.checks["median_abs_change_pct_double"] < 12.0
    assert result.checks["median_abs_change_pct_single"] < 8.0
