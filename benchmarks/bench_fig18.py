"""Fig. 18: SiMRA timing-delay sweep."""

from conftest import run_and_print


def test_fig18(benchmark, scale):
    result = run_and_print(benchmark, "fig18", scale)
    # paper Obs. 19: longer PRE->ACT strengthens the attack (~1.23x)
    assert 1.05 <= result.checks["preact_gain_1p5_to_4p5"] <= 1.6
    # paper Obs. 20: 1.5 ns ACT->PRE partially activates rows (~2.28x)
    assert result.checks["partial_activation_penalty"] > 1.3
