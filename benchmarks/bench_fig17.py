"""Fig. 17: SiMRA vs RowPress across tAggOn."""

from conftest import run_and_print


def test_fig17(benchmark, scale):
    result = run_and_print(benchmark, "fig17", scale)
    # paper Obs. 18: 144.9x-270.3x average reduction at 70.2 us
    for count in (2, 4, 8, 16):
        key = f"press_gain_n{count}"
        if key in result.checks:
            assert result.checks[key] > 60.0
