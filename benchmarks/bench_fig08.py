"""Fig. 8: CoMRA vs RowPress across tAggOn."""

from conftest import run_and_print


def test_fig08(benchmark, scale):
    result = run_and_print(benchmark, "fig08", scale)
    # paper Obs. 6: 70.2us tAggOn lowers CoMRA's average HC_first ~78.7x
    # and RowPress ~31.2x (Micron numbers; wide vendor bands here)
    assert result.checks["comra_press_gain_Micron"] > 25.0
    assert result.checks["rowpress_gain_Micron"] > 10.0
    # paper Obs. 7: at tAggOn = tREFI RowPress overtakes CoMRA
    assert result.checks["rowpress_beats_comra_at_trefi_Micron"] > 1.0
